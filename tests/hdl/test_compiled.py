"""Unit tests of the compiled (levelized) RTL backend.

Covers the compile-time contracts: levelization order, combinational
cycle diagnostics (the error names the looping signals), unsupported
feature fallback per component, strict-backend failures, late
compilation after the simulator has initialized, and the kernel's
statistics surface.
"""

import pytest

from repro.hdl import (CombinationalCycleError, CompileError,
                       CompiledKernel, CycleEngine, Simulator,
                       UnsupportedFeature, compile_kernel, raw_value,
                       slot_int)
from repro.rtl import Component

PERIOD = 10


def make_sim(clocking="cycle"):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    if clocking == "cycle":
        CycleEngine(sim, clk, period=PERIOD)
    else:
        sim.add_clock(clk, period=PERIOD)
    return sim, clk


class Toggle(Component):
    """Minimal compiled component: q toggles every clock."""

    def __init__(self, sim, name, clk, backend=None,
                 compile_fn="default"):
        super().__init__(sim, name, backend=backend)
        self.q = self.signal("q", init="0")
        self._state = 0
        if compile_fn == "default":
            compile_fn = self._compile_seq
        self.clocked(clk, self._tick, compile_fn=compile_fn)

    def _tick(self):
        self._state ^= 1
        self.q.drive("1" if self._state else "0")

    def _compile_seq(self, ctx):
        w_q = ctx.write(self.q)

        def evaluate():
            self._state ^= 1
            w_q("1" if self._state else "0")

        return evaluate


# ---------------------------------------------------------------------------
# Kernel construction and registration contracts
# ---------------------------------------------------------------------------

def test_compile_kernel_is_cached_per_clock():
    sim, clk = make_sim()
    assert compile_kernel(sim, clk) is compile_kernel(sim, clk)
    other = sim.signal("clk2", init="0")
    assert compile_kernel(sim, other) is not compile_kernel(sim, clk)


def test_vector_clock_rejected():
    sim, _clk = make_sim()
    bus = sim.signal("bus", width=8, init=0)
    with pytest.raises(UnsupportedFeature):
        CompiledKernel(sim, bus)


def test_foreign_simulator_signal_rejected():
    sim, clk = make_sim()
    other_sim = Simulator()
    foreign = other_sim.signal("foreign", init="0")
    kernel = compile_kernel(sim, clk)

    def builder(ctx):
        ctx.read(foreign)
        return lambda: None

    with pytest.raises(UnsupportedFeature):
        kernel.add_seq("t", builder)


def test_double_writer_rejected():
    sim, clk = make_sim()
    out = sim.signal("out", init="0")
    kernel = compile_kernel(sim, clk)

    def builder(ctx):
        w = ctx.write(out)
        return lambda: w("1")

    kernel.add_seq("first", builder)
    with pytest.raises(UnsupportedFeature):
        kernel.add_seq("second", builder)


def test_foreign_driver_at_compile_time_rejected():
    sim, clk = make_sim()
    out = sim.signal("out", init="0")
    out.drive("1")
    sim.run(until=PERIOD)          # the anonymous driver now owns out
    kernel = compile_kernel(sim, clk)

    def builder(ctx):
        w = ctx.write(out)
        return lambda: w("0")

    with pytest.raises(UnsupportedFeature):
        kernel.add_seq("t", builder)


def test_compile_hook_must_return_callable():
    sim, clk = make_sim()
    kernel = compile_kernel(sim, clk)
    with pytest.raises(CompileError):
        kernel.add_seq("bad", lambda ctx: None)


# ---------------------------------------------------------------------------
# Combinational levelization
# ---------------------------------------------------------------------------

def _comb_chain(sim, clk, order):
    """a -> b -> c combinational chain registered in *order*; a is
    sequential (toggles), b = a, c = b."""
    kernel = compile_kernel(sim, clk)
    a = sim.signal("a", init="0")
    b = sim.signal("b", init="0")
    c = sim.signal("c", init="0")
    state = {"v": 0}

    def seq(ctx):
        w_a = ctx.write(a)

        def evaluate():
            state["v"] ^= 1
            w_a("1" if state["v"] else "0")

        return evaluate

    def make_buffer(src, dst):
        def builder(ctx):
            r = ctx.read(src)
            w = ctx.write(dst)
            return lambda: w(r.value)
        return builder

    kernel.add_seq("seq", seq)
    builders = {"b": make_buffer(a, b), "c": make_buffer(b, c)}
    for key in order:
        kernel.add_comb(key, builders[key])
    return a, b, c


@pytest.mark.parametrize("order", [("b", "c"), ("c", "b")])
def test_comb_chain_levelized_regardless_of_order(order):
    sim, clk = make_sim()
    a, b, c = _comb_chain(sim, clk, order)
    sim.run(until=PERIOD)          # one rising edge
    assert (a.value, b.value, c.value) == ("1", "1", "1")
    sim.run(until=2 * PERIOD)
    assert (a.value, b.value, c.value) == ("0", "0", "0")


def make_buffer(src, dst):
    def builder(ctx):
        r = ctx.read(src)
        w = ctx.write(dst)
        return lambda: w(r.value)
    return builder


def test_combinational_cycle_diagnostic_names_signals():
    sim, clk = make_sim()
    kernel = compile_kernel(sim, clk)
    x = sim.signal("loop.x", init="0")
    y = sim.signal("loop.y", init="0")
    kernel.add_comb("xy", make_buffer(x, y))   # forward-reads x
    with pytest.raises(CombinationalCycleError) as excinfo:
        kernel.add_comb("yx", make_buffer(y, x))
    message = str(excinfo.value)
    assert "loop.x" in message and "loop.y" in message


def test_self_dependent_comb_is_a_cycle():
    sim, clk = make_sim()
    kernel = compile_kernel(sim, clk)
    q = sim.signal("latch.q", init="0")
    with pytest.raises(CombinationalCycleError) as excinfo:
        kernel.add_comb("latch", make_buffer(q, q))
    assert "latch.q" in str(excinfo.value)


def test_comb_input_with_foreign_driver_rejected_at_registration():
    sim, clk = make_sim()
    kernel = compile_kernel(sim, clk)
    outside = sim.signal("outside", init="0")
    outside.drive("1")
    sim.run(until=PERIOD)          # anonymous driver now owns outside
    out = sim.signal("out", init="0")
    with pytest.raises(UnsupportedFeature) as excinfo:
        kernel.add_comb("c", make_buffer(outside, out))
    assert "outside" in str(excinfo.value)


def test_unresolved_forward_reference_fails_at_initialize():
    sim, clk = make_sim()
    kernel = compile_kernel(sim, clk)
    pending = sim.signal("pending", init="0")
    out = sim.signal("out", init="0")
    kernel.add_comb("c", make_buffer(pending, out))  # tolerated now...
    with pytest.raises(UnsupportedFeature) as excinfo:
        sim.run(until=PERIOD)      # ...but nothing ever wrote it
    assert "pending" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Backend selection and fallback
# ---------------------------------------------------------------------------

def test_backend_inherits_simulator_default():
    sim, clk = make_sim()
    sim.rtl_backend = "event"
    toggle = Toggle(sim, "t", clk)
    assert toggle.backend == "event"
    assert toggle.backends["seq"] == "event"
    assert sim.stats_snapshot()["compiled_components"] == 0


def test_invalid_backend_rejected():
    sim, clk = make_sim()
    with pytest.raises(ValueError):
        Toggle(sim, "t", clk, backend="vliw")


def test_auto_fallback_counts_and_still_runs():
    sim, clk = make_sim()

    def refuse(_ctx):
        raise UnsupportedFeature("deliberately unsupported")

    toggle = Toggle(sim, "t", clk, backend="auto", compile_fn=refuse)
    assert toggle.backends["seq"] == "event"
    assert sim.compiled_fallbacks == 1
    sim.run(until=2 * PERIOD)
    assert toggle.q.value == "0"   # toggled twice
    assert sim.stats_snapshot()["compiled_fallbacks"] == 1


def test_strict_compiled_reraises_unsupported():
    sim, clk = make_sim()

    def refuse(_ctx):
        raise UnsupportedFeature("deliberately unsupported")

    with pytest.raises(UnsupportedFeature):
        Toggle(sim, "t", clk, backend="compiled", compile_fn=refuse)


def test_strict_compiled_requires_hook():
    sim, clk = make_sim()
    with pytest.raises(CompileError):
        Toggle(sim, "t", clk, backend="compiled", compile_fn=None)


def test_event_backend_ignores_hook():
    sim, clk = make_sim()
    toggle = Toggle(sim, "t", clk, backend="event")
    assert toggle.backends["seq"] == "event"
    sim.run(until=3 * PERIOD)
    assert toggle.q.value == "1"


# ---------------------------------------------------------------------------
# Execution semantics
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("clocking", ["event", "cycle"])
def test_compiled_toggle_matches_event_toggle(clocking):
    traces = {}
    for backend in ("event", "compiled"):
        sim, clk = make_sim(clocking)
        toggle = Toggle(sim, "t", clk, backend=backend)
        changes = []
        sim.signal_hooks.append(
            lambda s, changes=changes: changes.append(
                (sim.now, s.name, s.value)))
        sim.run(until=6 * PERIOD)
        traces[backend] = [c for c in changes if c[1] == "t.q"]
        assert toggle.q.change_count == 6
    assert traces["compiled"] == traces["event"]


def test_late_component_compiles_after_initialize():
    sim, clk = make_sim()
    sim.run(until=2 * PERIOD)
    toggle = Toggle(sim, "late", clk, backend="compiled")
    assert toggle.backends["seq"] == "compiled"
    sim.run(until=4 * PERIOD)
    assert toggle.q.value == "0"   # two edges seen -> toggled twice
    assert toggle.q.change_count >= 2


def test_stats_snapshot_reports_compiled_activity():
    sim, clk = make_sim()
    Toggle(sim, "t", clk, backend="compiled")
    sim.run(until=4 * PERIOD)
    stats = sim.stats_snapshot()
    assert stats["compiled_components"] == 1
    assert stats["compiled_evals"] == 4          # one eval per edge
    assert stats["compiled_commit_writes"] == 4  # q changes every edge
    assert stats["compiled_fallbacks"] == 0
    kernel = compile_kernel(sim, clk)
    snap = kernel.stats_snapshot()
    assert snap["seq_evals"] == 1
    assert snap["comb_evals"] == 0
    assert snap["evals_run"] == 4
    assert snap["commit_writes"] == 4


def test_idle_compiled_component_schedules_no_commit():
    """A compiled process whose outputs never change must not cost
    commit work (the no-op-drive elimination the backend exists for)."""
    sim, clk = make_sim()

    class Idle(Component):
        def __init__(self, sim, name, clk):
            super().__init__(sim, name, backend="compiled")
            self.q = self.signal("q", init="0")
            self.clocked(clk, lambda: self.q.drive("0"),
                         compile_fn=self._compile_seq)

        def _compile_seq(self, ctx):
            w_q = ctx.write(self.q)
            return lambda: w_q("0")

    Idle(sim, "idle", clk)
    sim.run(until=50 * PERIOD)
    baseline_runs = sim.process_runs
    sim.run(until=100 * PERIOD)
    assert sim.process_runs == baseline_runs   # no commits, no runs
    stats = sim.stats_snapshot()
    assert stats["compiled_evals"] == 100
    assert stats["compiled_commit_writes"] == 0


def test_runtime_foreign_driver_resolves_with_ieee_table():
    """A driver appearing on a compiled output *after* compilation is
    resolved through the IEEE-1164 table at commit time."""
    sim, clk = make_sim()
    toggle = Toggle(sim, "t", clk, backend="compiled")
    sim.run(until=PERIOD)
    assert toggle.q.value == "1"
    toggle.q.drive("0")            # anonymous test-bench contender
    sim.run(until=3 * PERIOD)      # edges at 15 ('0'|'0') and 25 ('1'|'0')
    assert toggle.q.value == "X"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def test_slot_int_passthrough_and_vector():
    assert slot_int(42) == 42
    assert slot_int(("1", "0", "1")) == 5


def test_raw_value_normalizes_per_signal():
    sim, _clk = make_sim()
    scalar = sim.signal("s", init="0")
    bus = sim.signal("v", width=4, init=0)
    assert raw_value(scalar, 1) == "1"
    assert raw_value(bus, 5) == 5
    assert raw_value(bus, "ZZZZ") == ("Z", "Z", "Z", "Z")
