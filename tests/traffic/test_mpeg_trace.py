"""Unit tests for MPEG trace synthesis and trace record/replay."""


import pytest

from repro.traffic import (GOP_PATTERN, MpegCellArrivals,
                           MpegTraceSynthesizer, Trace, TraceError,
                           TraceReplayArrivals)


class TestMpegSynthesizer:
    def test_gop_pattern_followed(self):
        syn = MpegTraceSynthesizer(frame_rate=25.0, seed=1)
        types = [syn.next_frame()[1] for _ in range(24)]
        assert "".join(types) == GOP_PATTERN * 2

    def test_frame_times_match_frame_rate(self):
        syn = MpegTraceSynthesizer(frame_rate=25.0, seed=1)
        starts = [syn.next_frame()[0] for _ in range(5)]
        assert starts == pytest.approx([0.0, 0.04, 0.08, 0.12, 0.16])

    def test_i_frames_larger_on_average(self):
        syn = MpegTraceSynthesizer(seed=5)
        frames = syn.frames(12 * 50)
        by_type = {"I": [], "P": [], "B": []}
        for _t, ftype, size in frames:
            by_type[ftype].append(size)
        mean = {k: sum(v) / len(v) for k, v in by_type.items()}
        assert mean["I"] > mean["P"] > mean["B"]

    def test_reset_reproduces(self):
        syn = MpegTraceSynthesizer(seed=2)
        first = syn.frames(30)
        syn.reset()
        assert syn.frames(30) == first

    def test_sizes_positive(self):
        syn = MpegTraceSynthesizer(seed=3)
        assert all(size >= 1 for _t, _f, size in syn.frames(100))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MpegTraceSynthesizer(frame_rate=0)
        with pytest.raises(ValueError):
            MpegTraceSynthesizer(gop_pattern="IXP")


class TestMpegCellArrivals:
    def test_cells_per_frame_matches_payload(self):
        syn = MpegTraceSynthesizer(seed=4)
        syn.frame_stats = {k: (480.0, 0.0001) for k in "IPB"}
        arrivals = MpegCellArrivals(syn, cell_spacing=1e-6)
        # ~480 bytes => 10 cells per frame at 48-byte payloads
        gaps = [arrivals.next_interarrival() for _ in range(10)]
        times = []
        t = 0.0
        for g in gaps:
            t += g
            times.append(t)
        burst = [g for g in gaps[1:] if g <= 1.1e-6]
        assert len(burst) == 9  # 10 cells back-to-back in frame 0

    def test_arrivals_monotone(self):
        syn = MpegTraceSynthesizer(seed=6)
        arrivals = MpegCellArrivals(syn)
        t = 0.0
        for _ in range(2000):
            gap = arrivals.next_interarrival()
            assert gap >= 0.0
            t += gap

    def test_reset(self):
        syn = MpegTraceSynthesizer(seed=7)
        arrivals = MpegCellArrivals(syn)
        first = [arrivals.next_interarrival() for _ in range(100)]
        arrivals.reset()
        assert [arrivals.next_interarrival() for _ in range(100)] == first

    def test_invalid_spacing(self):
        syn = MpegTraceSynthesizer(seed=1)
        with pytest.raises(ValueError):
            MpegCellArrivals(syn, cell_spacing=0.0)


class TestTrace:
    def test_append_and_iterate(self):
        t = Trace(name="x")
        t.append(0.0, {"VPI": 1})
        t.append(1.5, {"VPI": 2})
        assert len(t) == 2
        assert t[1] == (1.5, {"VPI": 2})
        assert t.duration() == 1.5

    def test_out_of_order_rejected(self):
        t = Trace()
        t.append(2.0, {})
        with pytest.raises(TraceError):
            t.append(1.0, {})

    def test_save_load_round_trip(self, tmp_path):
        t = Trace(name="cells")
        for i in range(5):
            t.append(i * 0.5, {"VPI": i, "payload": f"p{i}"})
        path = tmp_path / "cells.trace"
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "cells"
        assert loaded.entries == t.entries

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_load_bad_entry_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"trace": "x"}\nnot-json\n')
        with pytest.raises(TraceError):
            Trace.load(path)


class TestTraceReplay:
    def test_replays_exact_times(self):
        t = Trace(entries=[(0.5, {}), (1.0, {}), (3.0, {})])
        replay = TraceReplayArrivals(t)
        gaps = [replay.next_interarrival() for _ in range(3)]
        assert gaps == pytest.approx([0.5, 0.5, 2.0])

    def test_exhaustion_raises_without_loop(self):
        t = Trace(entries=[(1.0, {})])
        replay = TraceReplayArrivals(t)
        replay.next_interarrival()
        with pytest.raises(StopIteration):
            replay.next_interarrival()

    def test_loop_preserves_internal_spacing(self):
        t = Trace(entries=[(0.0, {}), (1.0, {}), (2.0, {})])
        replay = TraceReplayArrivals(t, loop=True)
        gaps = [replay.next_interarrival() for _ in range(7)]
        # first pass 0,1,1 then restart one mean gap (1.0) later: 1,1,1,...
        assert gaps == pytest.approx([0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            TraceReplayArrivals(Trace())

    def test_reset(self):
        t = Trace(entries=[(0.25, {}), (0.75, {})])
        replay = TraceReplayArrivals(t)
        first = [replay.next_interarrival() for _ in range(2)]
        replay.reset()
        assert [replay.next_interarrival() for _ in range(2)] == first
