"""RTL ATM switch port module.

The hardware fast path of one switch port: receives an octet-serial
cell stream, checks the HEC, extracts VPI/VCI, translates them through
a small connection RAM, regenerates the header (with fresh HEC) and
streams the cell out again.  Cells failing the HEC or missing from the
table are discarded (and counted).

The translation RAM is written through a management interface
(:meth:`install`), modelling the configuration writes the global
control unit performs — the paper's split between fast-path port
modules and the control unit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .cell_stream import CELL_OCTETS, CellStreamPort
from .component import Component
from .hec_circuit import crc8_step

__all__ = ["AtmPortModuleRtl"]

_COSET = 0x55


class AtmPortModuleRtl(Component):
    """One RTL port module: HEC check + VPI/VCI translation.

    Pipeline: the 53 octets of a cell are collected (53 clocks); on the
    clock after the last octet the translated cell starts streaming out
    of ``tx`` (one octet per clock), so a cell experiences a fixed
    pipeline latency of one cell time plus one clock.

    Args:
        sim, name, clk: as usual.
        rx: input stream port (created when ``None``).
        tx: output stream port (created when ``None``).
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 rx: Optional[CellStreamPort] = None,
                 tx: Optional[CellStreamPort] = None,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        self.rx = rx if rx is not None else CellStreamPort(sim, f"{name}.rx")
        self.tx = tx if tx is not None else CellStreamPort(sim, f"{name}.tx")
        #: (vpi, vci) -> (out_vpi, out_vci); the translation RAM.
        self._table: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._rx_buffer: List[int] = []
        self._rx_crc = 0
        self._tx_queue: List[List[int]] = []
        self._tx_offset = 0
        self.cells_received = 0
        self.cells_translated = 0
        self.hec_errors = 0
        self.unknown_connections = 0
        self.idle_cells = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    # -- management plane ---------------------------------------------------
    def install(self, vpi: int, vci: int, out_vpi: int,
                out_vci: int) -> None:
        """Write one translation RAM entry."""
        self._table[(vpi, vci)] = (out_vpi, out_vci)

    def remove(self, vpi: int, vci: int) -> None:
        """Clear one translation RAM entry."""
        self._table.pop((vpi, vci), None)

    def counters(self) -> Dict[str, int]:
        """Management-plane counter snapshot — the level-agnostic
        surface the cross-level equivalence harness diffs."""
        return {
            "cells_received": self.cells_received,
            "cells_translated": self.cells_translated,
            "hec_errors": self.hec_errors,
            "unknown_connections": self.unknown_connections,
            "idle_cells": self.idle_cells,
        }

    # -- fast path ------------------------------------------------------------
    def _tick(self) -> None:
        self._receive_octet()
        self._transmit_octet()

    def _receive_octet(self) -> None:
        if self.rx.valid.value != "1":
            return
        octet = vector_to_int(self.rx.atmdata.value)
        if self.rx.cellsync.value == "1":
            self._rx_buffer = [octet]
            self._rx_crc = crc8_step(0, octet)
        elif not self._rx_buffer:
            return  # octets before the first cellsync
        else:
            self._rx_buffer.append(octet)
            if len(self._rx_buffer) <= 4:
                self._rx_crc = crc8_step(self._rx_crc, octet)
        if len(self._rx_buffer) == CELL_OCTETS:
            self._complete_cell(self._rx_buffer)
            self._rx_buffer = []

    def _complete_cell(self, octets: List[int]) -> None:
        self.cells_received += 1
        if (self._rx_crc ^ _COSET) != octets[4]:
            self.hec_errors += 1
            return
        vpi = ((octets[0] & 0xF) << 4) | ((octets[1] >> 4) & 0xF)
        vci = (((octets[1] & 0xF) << 12) | (octets[2] << 4)
               | ((octets[3] >> 4) & 0xF))
        if (vpi, vci) == (0, 0):
            self.idle_cells += 1
            return
        translation = self._table.get((vpi, vci))
        if translation is None:
            self.unknown_connections += 1
            return
        out_vpi, out_vci = translation
        header = [
            (octets[0] & 0xF0) | ((out_vpi >> 4) & 0xF),
            ((out_vpi & 0xF) << 4) | ((out_vci >> 12) & 0xF),
            (out_vci >> 4) & 0xFF,
            ((out_vci & 0xF) << 4) | (octets[3] & 0x0F),
        ]
        crc = 0
        for octet in header:
            crc = crc8_step(crc, octet)
        header.append(crc ^ _COSET)
        self.cells_translated += 1
        self._tx_queue.append(header + octets[5:])

    def _transmit_octet(self) -> None:
        if not self._tx_queue:
            self.tx.valid.drive("0")
            self.tx.cellsync.drive("0")
            return
        cell = self._tx_queue[0]
        octet = cell[self._tx_offset]
        self.tx.atmdata.drive(octet)
        self.tx.cellsync.drive("1" if self._tx_offset == 0 else "0")
        self.tx.valid.drive("1")
        self._tx_offset += 1
        if self._tx_offset == CELL_OCTETS:
            self._tx_queue.pop(0)
            self._tx_offset = 0

    # -- compiled twin --------------------------------------------------------
    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick` (cell completion reuses the
        pure :meth:`_complete_cell`)."""
        valid = ctx.read(self.rx.valid)
        cellsync = ctx.read(self.rx.cellsync)
        atmdata = ctx.read(self.rx.atmdata)
        w_atmdata = ctx.write(self.tx.atmdata)
        w_cellsync = ctx.write(self.tx.cellsync)
        w_valid = ctx.write(self.tx.valid)
        queue = self._tx_queue
        #: idle levels already driven -> skip the per-edge '0' writes
        self._tx_idle = False

        def evaluate():
            # receive
            if valid.value == "1":
                octet = slot_int(atmdata.value)
                buffer = self._rx_buffer
                if cellsync.value == "1":
                    buffer = self._rx_buffer = [octet]
                    self._rx_crc = crc8_step(0, octet)
                elif buffer:
                    buffer.append(octet)
                    if len(buffer) <= 4:
                        self._rx_crc = crc8_step(self._rx_crc, octet)
                else:
                    buffer = None
                if buffer is not None and len(buffer) == CELL_OCTETS:
                    self._complete_cell(buffer)
                    self._rx_buffer = []
            # transmit
            if not queue:
                if not self._tx_idle:
                    w_valid("0")
                    w_cellsync("0")
                    self._tx_idle = True
            else:
                self._tx_idle = False
                cell = queue[0]
                offset = self._tx_offset
                w_atmdata(cell[offset])
                w_cellsync("1" if offset == 0 else "0")
                w_valid("1")
                offset += 1
                if offset == CELL_OCTETS:
                    queue.pop(0)
                    offset = 0
                self._tx_offset = offset

        return evaluate
