"""Statistic collection for network simulations.

OPNET-style analysis support: probes record (time, value) samples and
offer the summary statistics the paper's "powerful analysis
capabilities" bullet refers to — means, percentiles, time averages and
rate estimates.  Probes are cheap enough to leave enabled in
co-simulation runs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["Probe", "RateMeter", "summary"]


class Probe:
    """Records a time series of scalar samples.

    Example:
        >>> p = Probe("queue_len")
        >>> p.record(0.0, 1)
        >>> p.record(2.0, 3)
        >>> p.mean()
        2.0
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"probe {self.name!r}: sample time {time} precedes "
                f"{self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        """Arithmetic mean of the samples (nan when empty)."""
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    def maximum(self) -> float:
        """Largest sample (nan when empty)."""
        return max(self.values) if self.values else math.nan

    def minimum(self) -> float:
        """Smallest sample (nan when empty)."""
        return min(self.values) if self.values else math.nan

    def std(self) -> float:
        """Population standard deviation (nan for <1 sample)."""
        n = len(self.values)
        if n < 1:
            return math.nan
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / n)

    def percentile(self, q: float) -> float:
        """Linear-interpolated *q*-th percentile, 0 <= q <= 100."""
        if not self.values:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        data = sorted(self.values)
        if len(data) == 1:
            return data[0]
        pos = (len(data) - 1) * q / 100.0
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        frac = pos - lo
        # a + (b-a)*frac is exact for a == b (the weighted-sum form can
        # underflow to zero on denormal inputs)
        return data[lo] + (data[hi] - data[lo]) * frac

    def time_average(self) -> float:
        """Time-weighted average, treating samples as a step function
        held until the next sample (nan for <2 samples)."""
        if len(self.values) < 2:
            return math.nan
        area = 0.0
        for i in range(len(self.values) - 1):
            area += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        return area / span if span > 0 else math.nan


class RateMeter:
    """Counts discrete occurrences and reports rates over the run."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def tick(self, time: float, n: int = 1) -> None:
        """Record *n* occurrences at *time*."""
        if self.first_time is None:
            self.first_time = time
        self.last_time = time
        self.count += n

    def rate(self) -> float:
        """Occurrences per unit time across the observed span."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        span = self.last_time - self.first_time
        if span <= 0:
            return 0.0
        return self.count / span


def summary(values: Sequence[float]) -> Tuple[float, float, float, float]:
    """Return (mean, std, min, max) for *values* (nans when empty)."""
    probe = Probe("_summary")
    for i, v in enumerate(values):
        probe.record(float(i), v)
    return probe.mean(), probe.std(), probe.minimum(), probe.maximum()
