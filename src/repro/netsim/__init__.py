"""OPNET-equivalent discrete-event network simulator.

Provides the network / node / process modelling domains the paper's
co-verification environment is built on: an event-list kernel,
communicating extended FSM process models, intra-node modules and
packet streams, rate-limited links and statistic probes.
"""

from .events import Event, Interrupt, InterruptKind, SchedulingError
from .kernel import Kernel
from .links import LinkError, PointToPointLink
from .node import (Module, Node, ProcessorModule, QueueModule, SinkModule,
                   WiringError)
from .packet import Packet, PacketFormatError
from .process import FsmError, ProcessModel, State, Transition
from .stat_trigger import StatTrigger
from .statistics import Probe, RateMeter, summary
from .topology import Network

__all__ = [
    "Event", "Interrupt", "InterruptKind", "SchedulingError",
    "Kernel",
    "LinkError", "PointToPointLink",
    "Module", "Node", "ProcessorModule", "QueueModule", "SinkModule",
    "WiringError",
    "Packet", "PacketFormatError",
    "FsmError", "ProcessModel", "State", "Transition",
    "Probe", "RateMeter", "summary",
    "StatTrigger",
    "Network",
]
