"""Tests for the conservative synchronisation protocol (§3.1).

The central properties, per the paper and Figure 3:

* neither simulator ever produces events in the other's past;
* the HDL simulator's local time always lags the network simulator's;
* the protocol is deadlock-free (every posted message is eventually
  delivered once time advances past it).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (CausalityError, ConservativeSynchronizer,
                        LockstepSynchronizer, TimeBase)
from repro.hdl import Simulator


def make_sync(deltas=None, handlers=None, **kwargs):
    tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
    hdl = Simulator()
    clk = hdl.signal("clk", init="0")
    hdl.add_clock(clk, period=tb.clock_period_ticks)
    sync = ConservativeSynchronizer(hdl, tb, deltas or {"cell": 55},
                                    handlers=handlers, **kwargs)
    return tb, hdl, sync


class TestConservative:
    def test_single_queue_message_delivered(self):
        delivered = []
        tb, hdl, sync = make_sync(
            handlers={"cell": lambda m: delivered.append(m.payload)})
        sync.post("cell", 1e-6, "A")
        assert delivered == ["A"]

    def test_hdl_advances_to_message_time(self):
        tb, hdl, sync = make_sync()
        sync.post("cell", 1e-6, "A")
        assert hdl.now >= tb.to_ticks(1e-6)

    def test_lag_invariant_holds(self):
        tb, hdl, sync = make_sync()
        for k in range(1, 20):
            sync.post("cell", k * 1e-6, k)
            assert tb.to_seconds(hdl.now) <= sync.originator_time + 1e-12

    def test_message_in_granted_past_rejected(self):
        tb, hdl, sync = make_sync()
        sync.post("cell", 2e-6, "A")
        with pytest.raises(CausalityError):
            sync.post("cell", 1e-6, "B")

    def test_two_queues_head_waits_for_coverage(self):
        """A message is held until every other queue has seen its
        time — the queueing rule of §3.1."""
        delivered = []
        tb, hdl, sync = make_sync(
            deltas={"cell": 55, "tick": 2},
            handlers={"cell": lambda m: delivered.append(("cell",
                                                          m.payload)),
                      "tick": lambda m: delivered.append(("tick",
                                                          m.payload))})
        sync.post("cell", 1e-6, "A")
        assert delivered == []  # tick queue silent: A must wait
        sync.post("tick", 2e-6, "T")
        # now both queues cover t=1e-6: A releases; T waits for cell
        assert ("cell", "A") in delivered
        assert ("tick", "T") not in delivered
        sync.advance_time(3e-6)
        assert ("tick", "T") in delivered

    def test_null_messages_release_waiting_heads(self):
        delivered = []
        tb, hdl, sync = make_sync(
            deltas={"cell": 55, "tick": 2},
            handlers={"cell": lambda m: delivered.append(m.payload),
                      "tick": lambda m: None})
        sync.post("cell", 1e-6, "A")
        assert delivered == []
        sync.advance_time(1e-6)  # null message covers the tick queue
        assert delivered == ["A"]
        assert sync.stats.null_messages == 1

    def test_deadlock_freedom_under_drain(self):
        """Whatever is still queued, drain() delivers everything."""
        delivered = []
        tb, hdl, sync = make_sync(
            deltas={"cell": 55, "tick": 2},
            handlers={"cell": lambda m: delivered.append(m.payload),
                      "tick": lambda m: delivered.append("tick")})
        for k in range(5):
            sync.post("cell", (k + 1) * 1e-6, k)
        sync.drain(6e-6)
        assert [d for d in delivered if d != "tick"] == [0, 1, 2, 3, 4]
        assert sync.queues.pending() == 0

    def test_windows_counted(self):
        tb, hdl, sync = make_sync()
        for k in range(1, 4):
            sync.post("cell", k * 1e-6, k)
        assert sync.stats.windows_granted == 3

    def test_simultaneous_messages_one_window(self):
        tb, hdl, sync = make_sync()
        sync.post("cell", 1e-6, "A")
        sync.post("cell", 1e-6, "B")
        assert sync.stats.windows_granted == 1

    def test_stats_dict(self):
        tb, hdl, sync = make_sync()
        sync.post("cell", 1e-6, "A")
        stats = sync.stats.as_dict()
        assert stats["messages_posted"] == 1
        assert stats["ticks_simulated"] > 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["cell", "tick"]),
                              st.integers(1, 1000)),
                    min_size=1, max_size=40))
    def test_property_lag_invariant_and_delivery(self, events):
        """For any time-ordered message mix: the HDL never overtakes
        the originator, and drain() delivers every message."""
        delivered = []
        tb, hdl, sync = make_sync(
            deltas={"cell": 55, "tick": 2},
            handlers={"cell": lambda m: delivered.append(m),
                      "tick": lambda m: delivered.append(m)})
        time = 0.0
        posted = 0
        for msg_type, gap_ns in events:
            time += gap_ns * 1e-9
            sync.post(msg_type, time, posted)
            posted += 1
            assert tb.to_seconds(hdl.now) <= sync.originator_time + 1e-12
        sync.drain(time + 1e-6)
        assert len(delivered) == posted
        # messages of each type delivered in their queue order
        for name in ("cell", "tick"):
            payloads = [m.payload for m in delivered
                        if m.msg_type == name]
            assert payloads == sorted(payloads)


class TestLockstep:
    def make(self, handler=None):
        tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
        hdl = Simulator()
        clk = hdl.signal("clk", init="0")
        hdl.add_clock(clk, period=10)
        return tb, hdl, LockstepSynchronizer(hdl, tb, handler=handler)

    def test_delivers_immediately(self):
        seen = []
        tb, hdl, sync = self.make(handler=lambda m: seen.append(m.payload))
        sync.post("cell", 1e-6, "A")
        assert seen == ["A"]
        assert hdl.now == tb.to_ticks(1e-6)

    def test_one_sync_exchange_per_clock(self):
        tb, hdl, sync = self.make()
        sync.advance_time(1e-6)  # 100 clock periods of 10 ticks
        assert sync.stats.null_messages == 100

    def test_conservative_needs_fewer_exchanges_than_lockstep(self):
        """The E2 claim in miniature: for sparse traffic the timing
        window protocol exchanges far fewer sync messages."""
        tb, hdl_c, conservative = make_sync()
        messages = [(k * 1e-5) for k in range(1, 6)]  # sparse cells
        for t in messages:
            conservative.post("cell", t, None)
        conservative.drain(max(messages) + 1e-6)

        tb2, hdl_l, lockstep = self.make()
        for t in messages:
            lockstep.post("cell", t, None)
        lockstep.advance_time(max(messages) + 1e-6)

        conservative_exchanges = (conservative.stats.messages_posted
                                  + conservative.stats.null_messages)
        lockstep_exchanges = (lockstep.stats.messages_posted
                              + lockstep.stats.null_messages)
        assert conservative_exchanges * 10 < lockstep_exchanges

    def test_past_message_rejected(self):
        tb, hdl, sync = self.make()
        sync.post("cell", 1e-6, None)
        with pytest.raises(CausalityError):
            sync.post("cell", 0.5e-6, None)


class TestPostMany:
    def test_batch_matches_sequential_posts(self):
        batch_delivered, seq_delivered = [], []
        _, _, batch = make_sync(
            handlers={"cell": lambda m: batch_delivered.append(m.payload)})
        _, _, seq = make_sync(
            handlers={"cell": lambda m: seq_delivered.append(m.payload)})
        messages = [("cell", (k + 1) * 1e-6, k) for k in range(5)]
        batch.post_many(messages)
        for msg_type, t, payload in messages:
            seq.post(msg_type, t, payload)
        assert batch_delivered == seq_delivered == [0, 1, 2, 3, 4]
        assert batch.stats.messages_posted == 5
        assert batch.hdl.now == seq.hdl.now
        assert batch.t_cur == seq.t_cur

    def test_empty_batch_is_a_noop(self):
        _, hdl, sync = make_sync()
        sync.post_many([])
        assert sync.stats.messages_posted == 0
        assert sync.stats.windows_granted == 0

    def test_batch_rejects_past_message(self):
        _, _, sync = make_sync()
        sync.post("cell", 2e-6, "A")
        with pytest.raises(CausalityError):
            sync.post_many([("cell", 1e-6, "B")])

    def test_simultaneous_batch_single_window(self):
        _, _, sync = make_sync()
        sync.post_many([("cell", 1e-6, "A"), ("cell", 1e-6, "B")])
        assert sync.stats.windows_granted == 1
        assert sync.stats.messages_released == 2


class TestNullCoalescing:
    def test_off_by_default(self):
        _, _, sync = make_sync()
        assert sync.coalesce_nulls is False
        for k in range(4):
            sync.advance_time((k + 1) * 1e-8)
        assert sync.stats.null_messages == 4
        assert sync.stats.null_messages_coalesced == 0

    def test_burst_within_cell_time_coalesces(self):
        # cell time = 53 clocks x 10 ticks x 1ns = 5.3e-7 s; a burst
        # of per-clock stamps inside one cell window folds into the
        # first grant
        _, _, sync = make_sync(coalesce_nulls=True)
        for k in range(10):
            sync.advance_time((k + 1) * 1e-8)
        assert sync.stats.null_messages == 10
        assert sync.stats.null_messages_coalesced == 9
        assert sync.originator_time == pytest.approx(1e-7)

    def test_stamp_beyond_cell_boundary_flushes(self):
        tb, _, sync = make_sync(coalesce_nulls=True)
        sync.advance_time(1e-8)                   # applies, opens window
        sync.advance_time(2e-8)                   # deferred
        boundary = 1e-8 + tb.cell_time_seconds
        sync.advance_time(boundary + 1e-9)        # crosses -> flush
        assert sync.stats.null_messages_coalesced == 1
        sync.advance_time(boundary + 2e-9)        # deferred again
        assert sync.stats.null_messages_coalesced == 2

    def test_data_message_flushes_pending_bound(self):
        delivered = []
        _, _, sync = make_sync(
            deltas={"cell": 55, "tick": 2},
            handlers={"cell": lambda m: delivered.append(m.payload),
                      "tick": lambda m: None},
            coalesce_nulls=True)
        sync.post("cell", 1e-6, "A")
        assert delivered == []        # tick queue has no coverage yet
        sync.advance_time(9e-7)       # below 1e-6: A still held
        sync.advance_time(1.05e-6)    # deferred bound covers t=1e-6...
        sync.post("cell", 2e-6, "B")  # ...and the data message flushes it
        assert delivered == ["A"]

    def test_drain_flushes_pending_bound(self):
        delivered = []
        _, _, sync = make_sync(
            deltas={"cell": 55, "tick": 2},
            handlers={"cell": lambda m: delivered.append(m.payload),
                      "tick": lambda m: None},
            coalesce_nulls=True)
        sync.post("cell", 1e-6, "A")
        sync.drain(2e-6)
        assert delivered == ["A"]
        assert sync.queues.pending() == 0

    def test_post_registers_stamp_before_flushing_stale_bound(self):
        """Several synchronisers can share one HDL kernel (a shard's
        switch ports + accounting unit live in one environment).  A
        sibling's post may legitimately run the shared clock to a new
        cell's stamp before this synchroniser hears about it; ``post``
        must register the incoming message's timestamp *before*
        flushing its stale coalesced bound, or the flush's window
        grant trips the lag check against outdated knowledge."""
        tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
        hdl = Simulator()
        clk = hdl.signal("clk", init="0")
        hdl.add_clock(clk, period=tb.clock_period_ticks)
        delivered = []
        sibling = ConservativeSynchronizer(hdl, tb, {"cell": 55})
        acct = ConservativeSynchronizer(
            hdl, tb, {"cell": 55, "tick": 2},
            handlers={"cell": lambda m: delivered.append(m.payload),
                      "tick": lambda m: None},
            coalesce_nulls=True)
        cell_s = tb.cell_time_seconds
        acct.advance_time(1.0 * cell_s)       # applied: sets the flush
        acct.post("cell", 1.5 * cell_s, "A")  # held (tick uncovered)
        acct.advance_time(1.8 * cell_s)       # below boundary: deferred
        assert acct.stats.null_messages_coalesced == 1
        # the sibling runs the SHARED clock to 2.0 cell times
        sibling.post("cell", 2.0 * cell_s, "X")
        assert tb.to_seconds(hdl.now) > 1.8 * cell_s
        # must not raise: the 2.0 stamp is proof the originator got there
        acct.post("cell", 2.0 * cell_s, "B")
        assert delivered == ["A"]

    def test_coalesced_deliveries_match_uncoalesced(self):
        """Horizon batching must not change what is delivered or when
        (in HDL ticks) — only how many queue sweeps it costs."""
        runs = {}
        for coalesce in (False, True):
            delivered = []
            _, hdl, sync = make_sync(
                deltas={"cell": 55, "tick": 2},
                handlers={"cell": lambda m, d=delivered: d.append(
                    (m.payload, sync.hdl.now)),
                          "tick": lambda m: None},
                coalesce_nulls=coalesce)
            for k in range(40):
                sync.advance_time((k + 1) * 2.5e-8)
                if k % 10 == 9:
                    sync.post("cell", (k + 1) * 2.5e-8 + 1e-9, k)
            sync.drain(2e-6)
            runs[coalesce] = delivered
        assert runs[True] == runs[False]
        assert len(runs[True]) == 4
