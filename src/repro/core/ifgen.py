"""Automatic interface-model generation (the paper's §4 outlook).

"To support the development of interface modules for OPNET and VHDL
simulators in the future proper interface description needs to be
developed.  Based on this description, core interface models can be
automatically generated.  Building blocks will be taken from a library
of generic protocol classes and conversion routines."

This module implements that outlook: an
:class:`InterfaceDescription` declares the abstract data type (a
:class:`~repro.core.mapping.StructMapper` field list), the word width
of the hardware port and the framing control signals; :meth:`build`
then *generates* the matching HDL-side interface model — a signal
bundle, a sender clocking PDUs word-by-word with the declared control
signals, and a receiver reassembling and unpacking them.

The octet-serial ATM cell interface of Figure 4 falls out as one
instance (:func:`atm_cell_interface`); any other protocol data unit —
management words, charging records, frame headers — is a different
description, no hand-written interface model required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hdl.logic import vector_to_int
from ..hdl.processes import RisingEdge
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .mapping import FieldSpec, MappingError, StructMapper

__all__ = ["InterfaceDescription", "GeneratedBundle", "GeneratedSender",
           "GeneratedReceiver", "atm_cell_interface",
           "charging_record_interface"]


@dataclass(frozen=True)
class InterfaceDescription:
    """Declarative description of one hardware interface.

    Args:
        name: interface name (prefixes generated signal names).
        struct: the abstract data type carried per PDU.
        word_bits: width of the data port (multiple of 8).
        start_signal: name of the control signal pulsed with word 0
            of each PDU (``None`` to omit).
        valid_signal: name of the control signal held high while a
            word is present (``None`` to omit — then the receiver
            frames purely on the start signal and word count).
        end_signal: optional control signal pulsed with the last word.
        gap_words: idle words inserted between consecutive PDUs.
    """

    name: str
    struct: StructMapper
    word_bits: int = 8
    start_signal: Optional[str] = "sync"
    valid_signal: Optional[str] = "valid"
    end_signal: Optional[str] = None
    gap_words: int = 0

    def __post_init__(self) -> None:
        if self.word_bits < 8 or self.word_bits % 8:
            raise MappingError(
                f"word width {self.word_bits} must be a positive "
                "multiple of 8")
        if self.start_signal is None and self.valid_signal is None:
            raise MappingError(
                "an interface needs at least a start or a valid signal "
                "for the receiver to frame on")
        if self.gap_words < 0:
            raise MappingError(f"negative gap {self.gap_words}")

    @property
    def octets_per_word(self) -> int:
        """Data-port width in octets."""
        return self.word_bits // 8

    @property
    def words_per_pdu(self) -> int:
        """Transfer length of one PDU in clock cycles."""
        return math.ceil(self.struct.total_octets / self.octets_per_word)

    # ------------------------------------------------------------------
    # Word-level conversion (the generated conversion routines)
    # ------------------------------------------------------------------
    def pack_words(self, values: Dict[str, int]) -> List[int]:
        """Abstract PDU -> word sequence (zero-padded final word)."""
        octets = self.struct.pack(values)
        octets = octets + [0] * (-len(octets) % self.octets_per_word)
        words = []
        for offset in range(0, len(octets), self.octets_per_word):
            word = 0
            for octet in octets[offset:offset + self.octets_per_word]:
                word = (word << 8) | octet
            words.append(word)
        return words

    def unpack_words(self, words: Sequence[int]) -> Dict[str, int]:
        """Word sequence -> abstract PDU (inverse of pack_words)."""
        if len(words) != self.words_per_pdu:
            raise MappingError(
                f"{self.name}: expected {self.words_per_pdu} words, "
                f"got {len(words)}")
        octets: List[int] = []
        for word in words:
            for shift in range(self.octets_per_word - 1, -1, -1):
                octets.append((word >> (8 * shift)) & 0xFF)
        return self.struct.unpack(octets[:self.struct.total_octets])

    # ------------------------------------------------------------------
    # Model generation
    # ------------------------------------------------------------------
    def build(self, sim: Simulator, clk: Signal,
              bundle: Optional["GeneratedBundle"] = None
              ) -> Tuple["GeneratedSender", "GeneratedReceiver"]:
        """Generate the interface models: (sender, receiver) sharing a
        signal bundle."""
        if bundle is None:
            bundle = GeneratedBundle(sim, self)
        sender = GeneratedSender(sim, clk, self, bundle)
        receiver = GeneratedReceiver(sim, clk, self, bundle)
        return sender, receiver

    def build_bundle(self, sim: Simulator) -> "GeneratedBundle":
        """Generate only the signal bundle (to wire a DUT against)."""
        return GeneratedBundle(sim, self)


class GeneratedBundle:
    """The generated signal bundle of one interface instance."""

    def __init__(self, sim: Simulator, desc: InterfaceDescription) -> None:
        self.desc = desc
        self.data = sim.signal(f"{desc.name}.data",
                               width=desc.word_bits, init=0)
        self.controls: Dict[str, Signal] = {}
        for name in (desc.start_signal, desc.valid_signal,
                     desc.end_signal):
            if name is not None:
                self.controls[name] = sim.signal(
                    f"{desc.name}.{name}", init="0")

    def signals(self) -> List[Signal]:
        """Data plus control signals (for VCD dumps / DUT wiring)."""
        return [self.data] + list(self.controls.values())


class GeneratedSender:
    """Generated stimulus model: clocks queued PDUs onto the bundle."""

    def __init__(self, sim: Simulator, clk: Signal,
                 desc: InterfaceDescription,
                 bundle: GeneratedBundle) -> None:
        self.desc = desc
        self.bundle = bundle
        self._queue: List[List[int]] = []
        self.pdus_sent = 0
        sim.add_generator(f"{desc.name}.gen_sender", self._run(clk))

    def send(self, values: Dict[str, int]) -> None:
        """Queue one abstract PDU for transmission."""
        self._queue.append(self.desc.pack_words(values))

    @property
    def backlog(self) -> int:
        """PDUs queued but not yet fully transmitted."""
        return len(self._queue)

    def _drive_idle(self) -> None:
        for signal in self.bundle.controls.values():
            signal.drive("0")

    def _run(self, clk: Signal):
        desc = self.desc
        start = self.bundle.controls.get(desc.start_signal)
        valid = self.bundle.controls.get(desc.valid_signal)
        end = self.bundle.controls.get(desc.end_signal)
        while True:
            if not self._queue:
                self._drive_idle()
                yield RisingEdge(clk)
                continue
            words = self._queue.pop(0)
            last_index = len(words) - 1
            for index, word in enumerate(words):
                self.bundle.data.drive(word)
                if start is not None:
                    start.drive("1" if index == 0 else "0")
                if valid is not None:
                    valid.drive("1")
                if end is not None:
                    end.drive("1" if index == last_index else "0")
                yield RisingEdge(clk)
            self.pdus_sent += 1
            self._drive_idle()
            for _ in range(desc.gap_words):
                yield RisingEdge(clk)


class GeneratedReceiver:
    """Generated monitor model: reassembles PDUs from the bundle."""

    def __init__(self, sim: Simulator, clk: Signal,
                 desc: InterfaceDescription,
                 bundle: GeneratedBundle,
                 on_pdu: Optional[Callable[[Dict[str, int]], None]] = None
                 ) -> None:
        self.desc = desc
        self.bundle = bundle
        self.on_pdu = on_pdu
        self.pdus: List[Dict[str, int]] = []
        self.framing_errors = 0
        self._words: Optional[List[int]] = None
        self._clk = clk
        sim.add_process(f"{desc.name}.gen_receiver", self._tick,
                        sensitivity=[clk])

    def _tick(self, _sim: Simulator) -> None:
        if self._clk.rising():
            self._sample()

    def _sample(self) -> None:
        desc = self.desc
        bundle = self.bundle
        valid = bundle.controls.get(desc.valid_signal)
        start = bundle.controls.get(desc.start_signal)
        if valid is not None and valid.value != "1":
            return
        if valid is None and (start is None or
                              (self._words is None
                               and start.value != "1")):
            return
        try:
            word = vector_to_int(bundle.data.value)
        except Exception:
            return
        if start is not None and start.value == "1":
            if self._words is not None:
                self.framing_errors += 1
            self._words = [word]
        elif self._words is None:
            self.framing_errors += 1
            return
        else:
            self._words.append(word)
        if len(self._words) == desc.words_per_pdu:
            words = self._words
            self._words = None
            pdu = desc.unpack_words(words)
            self.pdus.append(pdu)
            if self.on_pdu is not None:
                self.on_pdu(pdu)


# ---------------------------------------------------------------------------
# Library instances
# ---------------------------------------------------------------------------

def atm_cell_interface(name: str = "atm",
                       word_bits: int = 8,
                       gap_words: int = 0) -> InterfaceDescription:
    """The Figure-4 ATM cell interface as a generated description.

    Fields follow the UNI header layout; PAYLOAD carries the 48 octets
    as one 384-bit integer.  With ``word_bits=8`` one PDU is exactly
    53 words — the 53 clock cycles the paper quotes.
    """
    struct = StructMapper([
        FieldSpec("GFC", 4), FieldSpec("VPI", 8), FieldSpec("VCI", 16),
        FieldSpec("PT", 3), FieldSpec("CLP", 1), FieldSpec("HEC", 8),
        FieldSpec("PAYLOAD", 48 * 8),
    ])
    return InterfaceDescription(name=name, struct=struct,
                                word_bits=word_bits,
                                start_signal="cellsync",
                                valid_signal="valid",
                                gap_words=gap_words)


def charging_record_interface(name: str = "record",
                              word_bits: int = 32
                              ) -> InterfaceDescription:
    """The accounting unit's output records as a generated interface:
    six 32-bit words per record (cf. :mod:`repro.rtl.accounting_unit`).
    """
    struct = StructMapper([
        FieldSpec("VPI", 32), FieldSpec("VCI", 32),
        FieldSpec("INTERVAL", 32), FieldSpec("CELLS_CLP0", 32),
        FieldSpec("CELLS_CLP1", 32), FieldSpec("CHARGE", 32),
    ])
    return InterfaceDescription(name=name, struct=struct,
                                word_bits=word_bits,
                                start_signal="rec_start",
                                valid_signal="rec_valid")
