"""E5 — the ATM accounting unit case study (paper §4).

"We have used CASTANET for the functional verification of an ATM
accounting unit."

One network-level test bench — traffic models plus tariff ticks — is
reused against all three targets of Figure 1:

(a) the algorithm reference model (:class:`repro.atm.AccountingUnit`),
(b) the RTL implementation coupled via CASTANET co-simulation,
(c) the same RTL mounted on the hardware test board (functional chip
    verification).

A correct DUT matches the reference through both paths; injected RTL
bugs are caught through both paths.  This is the paper's core promise:
the test bench is authored once, at the highest abstraction level.
"""

import pytest

from repro.analysis import ExperimentResult, format_table
from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.board import HardwareTestBoard, RtlPinDevice
from repro.core import (BoardInterfaceModel, StreamComparator,
                        cell_stream_pin_config)
from repro.hdl import Simulator
from repro.rtl import AccountingUnitRtl
from repro.traffic import OnOffSource, PoissonArrivals

from .common import (CELL_TIME, TIMEBASE, collect_rtl_records, group_records,
                     reference_records, save_table, scaled)

CELLS = scaled(60)

CONNECTIONS = [
    # (vpi, vci, units_per_cell, units_clp1, fixed)
    (1, 100, 2, 1, 5),
    (1, 200, 3, 0, 0),
    (2, 300, 1, 1, 7),
]


def network_level_testbench(seed=7):
    """The single source of truth: a deterministic cell workload built
    from the traffic-model library (bursty + Poisson mix)."""
    onoff = OnOffSource(peak_period=CELL_TIME, mean_on=20 * CELL_TIME,
                        mean_off=40 * CELL_TIME, seed=seed)
    poisson = PoissonArrivals(rate=0.2 / CELL_TIME, seed=seed + 1)
    cells = []
    t_a = 0.0
    t_b = 0.0
    for index in range(CELLS):
        if index % 2 == 0:
            t_a += onoff.next_interarrival()
            vpi, vci, *_ = CONNECTIONS[index % len(CONNECTIONS)]
            cells.append((t_a, AtmCell.with_payload(
                vpi, vci, [index % 256], clp=(index // 2) % 2)))
        else:
            t_b += poisson.next_interarrival()
            vpi, vci, *_ = CONNECTIONS[(index + 1) % len(CONNECTIONS)]
            cells.append((t_b, AtmCell.with_payload(
                vpi, vci, [index % 256], clp=0)))
    cells.sort(key=lambda item: item[0])
    # enforce line discipline: successive cells at least a cell apart
    spaced = []
    t_prev = 0.0
    for t, cell in cells:
        t = max(t, t_prev + CELL_TIME)
        spaced.append((t, cell))
        t_prev = t
    return spaced


def reference_run(workload):
    """Two tariff intervals: the first closes mid-workload, the second
    at the end (two ticks are needed to expose a lost-tick defect)."""
    reference = AccountingUnit(drop_unknown=True)
    for vpi, vci, upc, upc1, fixed in CONNECTIONS:
        reference.register(vpi, vci, Tariff(
            units_per_cell=upc, units_per_cell_clp1=upc1,
            fixed_units=fixed))
    split = len(workload) // 2
    records = []
    for index, (_t, cell) in enumerate(workload):
        if index == split:
            records.extend(reference_records(reference))
        reference.cell_arrival(cell.vpi, cell.vci, clp=cell.clp)
    records.extend(reference_records(reference))
    return records


def cosim_run(workload, bug=None):
    """Path (b): RTL through the CASTANET coupling."""
    from repro.core import CoVerificationEnvironment
    env = CoVerificationEnvironment(timebase=TIMEBASE)
    dut = AccountingUnitRtl(env.hdl, "acct", env.clk, bug=bug)
    for vpi, vci, upc, upc1, fixed in CONNECTIONS:
        dut.register(vpi, vci, units_per_cell=upc,
                     units_per_cell_clp1=upc1, fixed_units=fixed)
    entity = env.add_dut(rx_port=dut.rx, tick_signal=dut.tariff_tick)
    words = collect_rtl_records(env.hdl, env.clk, dut)
    split = len(workload) // 2
    for index, (t, cell) in enumerate(workload):
        if index == split:
            # the tick must land strictly between the surrounding cells
            entity.send_tariff_tick(
                (workload[index - 1][0] + t) / 2.0)
        entity.send_cell(t, cell)
    last = workload[-1][0]
    entity.send_tariff_tick(last + 2 * CELL_TIME)
    entity.finish(last + 3 * CELL_TIME)
    env.hdl.run(until=env.hdl.now + 64 * TIMEBASE.clock_period_ticks)
    return group_records(words)


def board_run(workload, bug=None):
    """Path (c): the same RTL mounted on the hardware test board."""
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    dut = AccountingUnitRtl(sim, "acct", clk, bug=bug)
    for vpi, vci, upc, upc1, fixed in CONNECTIONS:
        dut.register(vpi, vci, units_per_cell=upc,
                     units_per_cell_clp1=upc1, fixed_units=fixed)
    config = cell_stream_pin_config()
    device = RtlPinDevice(
        sim, clk, config,
        input_signals={1: dut.rx.atmdata, 2: dut.rx.cellsync,
                       3: dut.rx.valid, 4: dut.tariff_tick},
        output_signals={1: dut.rec_valid, 2: dut.rec_word})
    board = HardwareTestBoard(config, memory_depth=1 << 16)
    interface = BoardInterfaceModel(board, device, cycle_clocks=2048)
    split = len(workload) // 2
    for index, (_t, cell) in enumerate(workload):
        if index == split:
            interface.queue_tariff_tick()
        interface.queue_cell(cell)
    interface.queue_tariff_tick()
    interface.flush()
    return interface.records(), interface


def verdict(expected, observed, name):
    comparator = StreamComparator(name, normalize="sorted")
    comparator.extend_reference(expected)
    comparator.extend_observed(observed)
    return comparator.compare()


def test_e5_correct_dut_passes_all_paths(benchmark):
    workload = network_level_testbench()
    expected = reference_run(workload)

    def run_once():
        cosim_records = cosim_run(workload)
        board_records, interface = board_run(workload)
        return (verdict(expected, cosim_records, "cosim"),
                verdict(expected, board_records, "board"), interface)

    cosim_report, board_report, interface = benchmark.pedantic(
        run_once, rounds=1, iterations=1)

    rows = [
        ExperimentResult("reference (algorithm model)", {
            "records": len(expected), "verdict": "—"}),
        ExperimentResult("RTL via CASTANET co-simulation", {
            "records": cosim_report.compared,
            "verdict": "PASS" if cosim_report.passed else "FAIL"}),
        ExperimentResult("chip on hardware test board", {
            "records": board_report.compared,
            "verdict": "PASS" if board_report.passed else "FAIL"}),
    ]
    save_table("e5_case_study.txt", format_table(
        f"E5: accounting-unit verification, {CELLS} cells, "
        "one network-level test bench, three targets",
        ["records", "verdict"], rows))
    assert cosim_report.passed, cosim_report.summary()
    assert board_report.passed, board_report.summary()
    assert len(expected) == 2 * len(CONNECTIONS)  # two tariff intervals


@pytest.mark.parametrize("bug", ["swap_clp", "charge_off_by_one",
                                 "lost_tick"])
def test_e5_injected_bugs_caught_by_both_paths(bug, benchmark):
    workload = network_level_testbench()
    expected = reference_run(workload)

    def run_once():
        cosim_records = cosim_run(workload, bug=bug)
        board_records, _ = board_run(workload, bug=bug)
        return (verdict(expected, cosim_records, f"cosim-{bug}"),
                verdict(expected, board_records, f"board-{bug}"))

    cosim_report, board_report = benchmark.pedantic(run_once, rounds=1,
                                                    iterations=1)
    assert not cosim_report.passed, f"co-sim missed injected bug {bug}"
    assert not board_report.passed, f"board path missed bug {bug}"
