"""Unit tests for abstract packets."""

import pytest

from repro.netsim import Packet, PacketFormatError


def test_fields_round_trip():
    p = Packet(size_bits=424, fields={"VPI": 1, "VCI": 2})
    assert p["VPI"] == 1
    p["VCI"] = 99
    assert p["VCI"] == 99


def test_missing_field_raises_packet_format_error():
    p = Packet()
    with pytest.raises(PacketFormatError):
        p["nope"]


def test_contains_and_get():
    p = Packet(fields={"a": 1})
    assert "a" in p
    assert "b" not in p
    assert p.get("b", 7) == 7


def test_ids_are_unique():
    ids = {Packet().id for _ in range(100)}
    assert len(ids) == 100


def test_copy_is_independent():
    p = Packet(size_bits=8, fields={"x": 1})
    q = p.copy()
    q["x"] = 2
    assert p["x"] == 1
    assert q.id != p.id
    assert q.size_bits == 8


def test_stamps():
    p = Packet()
    assert p.stamp_time("enqueue") is None
    p.stamp("enqueue", 3.5)
    assert p.stamp_time("enqueue") == 3.5
    q = p.copy()
    assert q.stamp_time("enqueue") == 3.5


def test_creation_time_recorded():
    p = Packet(creation_time=1.25)
    assert p.creation_time == 1.25
