"""Distributed telemetry over the shard wire: tid columns,
FRAME_TELEMETRY, cross-shard provenance and merged topology reports."""

import json

import pytest

from repro.shard import ShardSpec, TopologySpec, run_topology
from repro.shard.codec import (CELL_OCTETS, OpBatch, OutputBatch,
                               decode_frame, encode_frame,
                               parse_header)
from repro.shard.protocol import FRAME_ACK, FRAME_OPS, FRAME_TELEMETRY
from repro.shard.topology import ShardedTopology

BEHAV2 = dict(shards=[ShardSpec("shard0", level="behav"),
                      ShardSpec("shard1", level="behav")])


def _cell(seed):
    return bytes((seed + i) % 256 for i in range(CELL_OCTETS))


# ----------------------------------------------------------------------
# The optional tid column
# ----------------------------------------------------------------------
def test_ops_tid_column_round_trips():
    batch = OpBatch()
    batch.add_cell(1e-4, 0, _cell(1), tid=7)
    batch.add_null(2e-4)
    batch.add_cell(3e-4, 1, _cell(2), tid=9)
    kind, (seq, packed) = decode_frame(
        memoryview(encode_frame((FRAME_OPS, (5, batch)))))
    assert (kind, seq) == (FRAME_OPS, 5)
    assert list(packed.tids) == [7, 9]


def test_ops_all_zero_tid_column_is_normalised_away():
    """An unobserved batch (every tid 0) must encode octet-identical
    to one that never carried tids — the byte-compat guarantee with
    the pre-telemetry wire format."""
    stamped_zero = OpBatch()
    plain = OpBatch()
    for target, tid in ((stamped_zero, 0), (plain, None)):
        if tid is None:
            target.add_cell(1e-4, 2, _cell(3))
        else:
            target.add_cell(1e-4, 2, _cell(3), tid=tid)
        target.add_tick(2e-4)
    assert encode_frame((FRAME_OPS, (1, stamped_zero))) == \
        encode_frame((FRAME_OPS, (1, plain)))
    _, (_, packed) = decode_frame(
        memoryview(encode_frame((FRAME_OPS, (1, plain)))))
    assert packed.tids is None


def test_ack_tid_column_round_trips_and_zero_drops():
    batch = OutputBatch()
    batch.add(3, 1e-4, _cell(4), tid=11)
    batch.add(0, 2e-4, _cell(5), tid=12)
    kind, (seq, packed) = decode_frame(
        memoryview(encode_frame((FRAME_ACK, (2, batch)))))
    assert (kind, seq) == (FRAME_ACK, 2)
    assert list(packed.tids) == [11, 12]

    unstamped = OutputBatch()
    unstamped.add(3, 1e-4, _cell(4), tid=0)
    _, (_, packed) = decode_frame(
        memoryview(encode_frame((FRAME_ACK, (3, unstamped)))))
    assert packed.tids is None


def test_telemetry_frame_kind_round_trips():
    payload = {"schema": 1, "shard": "edge", "spans": [],
               "instruments": {"counters": {"a": 1},
                               "histograms": {}}}
    buffer = encode_frame((FRAME_TELEMETRY, payload))
    kind_code, length = parse_header(memoryview(buffer))
    assert kind_code == 9  # the wire code assigned to telemetry
    assert decode_frame(memoryview(buffer)) == \
        (FRAME_TELEMETRY, payload)


# ----------------------------------------------------------------------
# Telemetry over a live worker wire
# ----------------------------------------------------------------------
def test_handle_telemetry_exchange_mid_run_and_after_finish():
    spec = TopologySpec(cells=4, seed=0, observe=True,
                        window_slots=32, **BEHAV2)
    with ShardedTopology(spec) as topo:
        handle = topo.handles[0]
        handle.queue_null(1e-4)
        mid = handle.telemetry()
        assert mid["shard"] == "shard0"
        assert mid["schema"] == 1
        assert set(mid["coverage"]) == {"fsm_states", "sync_windows",
                                        "hop_latency_tail",
                                        "residual_backlog"}
        handle.finish(2e-4)
        done = handle.telemetry()
        assert done["shard"] == "shard0"
        assert done["level"] is not None


# ----------------------------------------------------------------------
# Topology-level telemetry
# ----------------------------------------------------------------------
def test_run_topology_observe_merges_telemetry():
    spec = TopologySpec(cells=12, seed=3, chain=True, observe=True,
                        window_slots=32, **BEHAV2)
    report = run_topology(spec, mode="local")
    telemetry = report["telemetry"]
    assert telemetry["shards"] == ["shard0", "shard1"]
    # ids are stamped coordinator-side, so shard trackers count
    # sampled journeys (not ids assigned)
    assert telemetry["provenance"]["cells_sampled"] > 0
    assert telemetry["spans"], "no spans recorded"
    assert all("shard" in span for span in telemetry["spans"])


def test_observe_off_report_has_no_telemetry():
    spec = TopologySpec(cells=8, seed=0, **BEHAV2)
    assert "telemetry" not in run_topology(spec, mode="local")


@pytest.mark.parametrize("transport", ["pipe", "socket", "shm"])
def test_observed_sharded_run_stays_byte_identical(transport):
    """Telemetry on, every transport: digests must match both the
    local observed twin AND the unobserved baseline — observability
    cannot perturb the simulation."""
    base = dict(cells=12, seed=3, chain=True, window_slots=32,
                transport=transport, **BEHAV2)
    baseline = run_topology(TopologySpec(**base), mode="local")
    observed = TopologySpec(observe=True, **base)
    local = run_topology(observed, mode="local")
    sharded = run_topology(observed, mode="sharded")
    assert local["digest"] == sharded["digest"] == baseline["digest"]
    assert len(local["telemetry"]["spans"]) == \
        len(sharded["telemetry"]["spans"])


def test_chained_cells_form_cross_shard_provenance_chains():
    """A cell that leaves shard0 and enters shard1 must appear in
    BOTH shards' span streams under one trace id, with the boundary
    hops recorded."""
    spec = TopologySpec(cells=12, seed=3, chain=True, observe=True,
                        window_slots=32, **BEHAV2)
    report = run_topology(spec, mode="sharded")
    spans = report["telemetry"]["spans"]
    by_cell = {}
    for span in spans:
        by_cell.setdefault(span["cell"], set()).add(span["shard"])
    crossing = [tid for tid, shards in by_cell.items()
                if len(shards) > 1]
    assert crossing, "no cell crossed the shard boundary"
    hops = {span["hop"] for span in spans}
    assert {"shard_in", "shard_out"} <= hops
    # every boundary-crossing cell has a connected in/out pair
    for tid in crossing:
        cell_hops = {s["hop"] for s in spans if s["cell"] == tid}
        assert "shard_in" in cell_hops


def test_local_mode_trace_files_carry_the_local_suffix(tmp_path):
    """--mode both writes both sides into one directory: the local
    replay must not clobber the worker traces."""
    trace_dir = tmp_path / "traces"
    spec = TopologySpec(cells=8, seed=0, window_slots=32,
                        trace_dir=str(trace_dir), **BEHAV2)
    run_topology(spec, mode="local")
    run_topology(spec, mode="sharded")
    for shard_id in ("shard0", "shard1"):
        local = trace_dir / f"{shard_id}.local.trace.jsonl"
        worker = trace_dir / f"{shard_id}.trace.jsonl"
        assert local.is_file() and worker.is_file()
        local_records = [json.loads(line) for line
                         in local.read_text().splitlines()]
        worker_records = [json.loads(line) for line
                          in worker.read_text().splitlines()]
        assert local_records == worker_records, \
            "local replay traced different decisions"
