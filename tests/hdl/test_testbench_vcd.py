"""Unit tests for test-bench helpers and the VCD writer."""

import pytest

from repro.hdl import (Scoreboard, ScoreboardError, SignalMonitor,
                       Simulator, VcdWriter, clocked_driver, drive_sequence)


class TestDriveSequence:
    def test_waveform_applied_in_order(self):
        sim = Simulator()
        s = sim.signal("s", init="0")
        drive_sequence(sim, s, [(5, "1"), (5, "0"), (0, "1")])
        sim.run(until=4)
        assert s.value == "1"
        sim.run(until=9)
        assert s.value == "0"
        sim.run(until=10)
        assert s.value == "1"

    def test_vector_waveform(self):
        sim = Simulator()
        v = sim.signal("v", width=4)
        drive_sequence(sim, v, [(2, 0xA), (2, 0x5)])
        sim.run(until=1)
        assert v.as_int() == 0xA
        sim.run(until=3)
        assert v.as_int() == 0x5


class TestClockedDriver:
    def test_one_value_per_rising_edge(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        data = sim.signal("data", width=8)
        sim.add_clock(clk, period=10)
        clocked_driver(sim, clk, data, [1, 2, 3])
        sim.run(until=100)
        assert data.as_int() == 3


class TestSignalMonitor:
    def test_samples_on_rising_edges(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        data = sim.signal("data", width=4, init=0)
        sim.add_clock(clk, period=10)
        monitor = SignalMonitor(sim, clk, data, as_int=True)
        data.drive(7, delay=12)
        sim.run(until=40)
        # edges at 5, 15, 25, 35; data becomes 7 at t=12
        assert monitor.values() == [0, 7, 7, 7]
        assert [t for t, _v in monitor.samples] == [5, 15, 25, 35]

    def test_enable_gating(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        data = sim.signal("data", width=4, init=3)
        enable = sim.signal("en", init="0")
        sim.add_clock(clk, period=10)
        monitor = SignalMonitor(sim, clk, data, as_int=True, enable=enable)
        enable.drive("1", delay=20)
        sim.run(until=40)
        assert [t for t, _v in monitor.samples] == [25, 35]

    def test_metavalue_sampled_as_none(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        data = sim.signal("data", width=4)  # all 'U'
        sim.add_clock(clk, period=10)
        monitor = SignalMonitor(sim, clk, data, as_int=True)
        sim.run(until=10)
        assert monitor.values() == [None]


class TestScoreboard:
    def test_matching_stream(self):
        sb = Scoreboard()
        sb.expect_all([1, 2, 3])
        for item in (1, 2, 3):
            assert sb.observe(item)
        sb.check_complete()
        assert sb.matched == 3

    def test_mismatch_raises_in_strict_mode(self):
        sb = Scoreboard()
        sb.expect(1)
        with pytest.raises(ScoreboardError):
            sb.observe(2)

    def test_unexpected_item_raises(self):
        sb = Scoreboard()
        with pytest.raises(ScoreboardError):
            sb.observe(1)

    def test_lenient_mode_records(self):
        sb = Scoreboard(strict=False)
        sb.expect_all([1, 2])
        sb.observe(9)
        sb.observe(2)
        assert sb.mismatches == [(1, 9)]
        assert sb.matched == 1

    def test_check_complete_flags_outstanding(self):
        sb = Scoreboard()
        sb.expect(1)
        assert sb.outstanding == 1
        with pytest.raises(ScoreboardError):
            sb.check_complete()


class TestVcd:
    def test_vcd_file_structure(self, tmp_path):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        data = sim.signal("data", width=4)
        path = tmp_path / "wave.vcd"
        with VcdWriter(sim, path, [clk, data]) as vcd:
            sim.add_clock(clk, period=10)
            data.drive(5, delay=7)
            sim.run(until=20)
        text = path.read_text()
        assert "$timescale 1ns $end" in text
        assert "$var wire 1" in text
        assert "$var wire 4" in text
        assert "#5" in text and "#7" in text
        assert "b0101" in text
        assert vcd.changes_written >= 3

    def test_initial_values_dumped_as_x_for_u(self, tmp_path):
        sim = Simulator()
        s = sim.signal("s")
        path = tmp_path / "init.vcd"
        with VcdWriter(sim, path, [s]):
            sim.run(until=1)
        assert "x" in path.read_text().split("$dumpvars")[1]

    def test_unselected_signals_not_dumped(self, tmp_path):
        sim = Simulator()
        a = sim.signal("a", init="0")
        b = sim.signal("b", init="0")
        path = tmp_path / "sel.vcd"
        with VcdWriter(sim, path, [a]):
            b.drive("1", delay=2)
            sim.run(until=5)
        assert "b" not in path.read_text().split("$enddefinitions")[0].split(
            "$var")[1]

    def test_close_detaches_hook(self, tmp_path):
        sim = Simulator()
        s = sim.signal("s", init="0")
        vcd = VcdWriter(sim, tmp_path / "d.vcd", [s]).open()
        vcd.close()
        assert vcd._on_change not in sim.signal_hooks
        s.drive("1")
        sim.run(until=1)  # must not blow up writing to a closed file
