"""Unit and property tests for the accounting reference model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import AccountingError, AccountingUnit, Tariff


def test_basic_counting_and_charge():
    unit = AccountingUnit()
    unit.register(1, 100, Tariff(units_per_cell=2))
    for _ in range(5):
        unit.cell_arrival(1, 100)
    records = unit.close_interval()
    assert len(records) == 1
    rec = records[0]
    assert rec.cells_clp0 == 5
    assert rec.charge_units == 10
    assert rec.interval == 0


def test_clp_discrimination():
    unit = AccountingUnit()
    unit.register(1, 1, Tariff(units_per_cell=3, units_per_cell_clp1=1))
    unit.cell_arrival(1, 1, clp=0)
    unit.cell_arrival(1, 1, clp=1)
    unit.cell_arrival(1, 1, clp=1)
    (rec,) = unit.close_interval()
    assert rec.cells_clp0 == 1
    assert rec.cells_clp1 == 2
    assert rec.charge_units == 3 + 2


def test_fixed_fee_charged_when_idle():
    unit = AccountingUnit()
    unit.register(0, 5, Tariff(units_per_cell=1, fixed_units=7))
    (rec,) = unit.close_interval()
    assert rec.charge_units == 7


def test_interval_counters_reset():
    unit = AccountingUnit()
    unit.register(1, 1, Tariff())
    unit.cell_arrival(1, 1)
    unit.close_interval()
    unit.cell_arrival(1, 1)
    unit.cell_arrival(1, 1)
    (rec,) = unit.close_interval()
    assert rec.cells_clp0 == 2
    assert rec.interval == 1


def test_unknown_connection_strict_raises():
    unit = AccountingUnit()
    with pytest.raises(AccountingError):
        unit.cell_arrival(9, 9)


def test_unknown_connection_tolerant_counts():
    unit = AccountingUnit(drop_unknown=True)
    assert unit.cell_arrival(9, 9) is False
    assert unit.unknown_cells == 1


def test_duplicate_registration_rejected():
    unit = AccountingUnit()
    unit.register(1, 1, Tariff())
    with pytest.raises(AccountingError):
        unit.register(1, 1, Tariff())


def test_deregister_emits_final_record():
    unit = AccountingUnit()
    unit.register(1, 1, Tariff(units_per_cell=1))
    unit.cell_arrival(1, 1)
    rec = unit.deregister(1, 1)
    assert rec.cells_clp0 == 1
    assert not unit.is_registered(1, 1)
    with pytest.raises(AccountingError):
        unit.deregister(1, 1)


def test_total_charge_accumulates():
    unit = AccountingUnit()
    unit.register(1, 1, Tariff(units_per_cell=1))
    unit.cell_arrival(1, 1)
    unit.close_interval()
    unit.cell_arrival(1, 1)
    unit.cell_arrival(1, 1)
    unit.close_interval()
    assert unit.total_charge(1, 1) == 3
    assert unit.grand_total() == 3


def test_records_sorted_by_connection_within_interval():
    unit = AccountingUnit()
    unit.register(2, 1, Tariff())
    unit.register(1, 1, Tariff())
    recs = unit.close_interval()
    assert [(r.vpi, r.vci) for r in recs] == [(1, 1), (2, 1)]


def test_invalid_tariff_rejected():
    with pytest.raises(AccountingError):
        Tariff(units_per_cell=-1)
    with pytest.raises(AccountingError):
        Tariff(fixed_units=1.5)


def test_connection_count():
    unit = AccountingUnit()
    assert unit.connection_count == 0
    unit.register(1, 1, Tariff())
    unit.register(1, 2, Tariff())
    assert unit.connection_count == 2


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1)),
                max_size=200),
       st.integers(0, 10), st.integers(0, 10), st.integers(0, 10),
       st.integers(1, 5))
def test_property_charge_equals_closed_form(cells, upc, upc1, fixed,
                                            intervals):
    """Total charge == fixed*intervals + clp0*upc + clp1*upc1, however
    the cells distribute over intervals."""
    unit = AccountingUnit()
    for conn in range(4):
        unit.register(0, conn, Tariff(units_per_cell=upc,
                                      units_per_cell_clp1=upc1,
                                      fixed_units=fixed))
    per_interval = max(1, len(cells) // intervals)
    clp0 = {c: 0 for c in range(4)}
    clp1 = {c: 0 for c in range(4)}
    for index, (conn, clp) in enumerate(cells):
        unit.cell_arrival(0, conn, clp=clp)
        (clp1 if clp else clp0)[conn] += 1
        if (index + 1) % per_interval == 0:
            unit.close_interval()
    unit.close_interval()
    closed = unit.interval
    for conn in range(4):
        expected = fixed * closed + clp0[conn] * upc + clp1[conn] * upc1
        assert unit.total_charge(0, conn) == expected
