"""Network-domain communication links.

Links connect node ports across the network domain.  A
:class:`PointToPointLink` models a simplex link with a transmission
rate (bits/s) and a propagation delay; transmission of consecutive
packets serialises on the link, matching the behaviour of a physical
line interface such as an ATM SDH/SONET port.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .kernel import Kernel
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["PointToPointLink", "LinkError"]


class LinkError(Exception):
    """Raised on invalid link configuration."""


class PointToPointLink:
    """Simplex point-to-point link between two node ports.

    Args:
        kernel: the simulation kernel.
        src: transmitting node.
        src_port: port index on *src*.
        dst: receiving node.
        dst_port: port index on *dst*.
        rate_bps: transmission rate in bits per second; ``None`` means
            infinitely fast (zero serialisation time).
        delay: propagation delay in seconds.

    ATM example: a 155.52 Mbit/s STM-1 link carries one 424-bit cell
    every ~2.726 µs — the "cell time" the paper derives network-simulator
    time units from.
    """

    def __init__(self, kernel: Kernel, src: "Node", src_port: int,
                 dst: "Node", dst_port: int,
                 rate_bps: Optional[float] = None,
                 delay: float = 0.0) -> None:
        if rate_bps is not None and rate_bps <= 0:
            raise LinkError(f"non-positive link rate {rate_bps}")
        if delay < 0:
            raise LinkError(f"negative link delay {delay}")
        self.kernel = kernel
        self.src = src
        self.dst = dst
        self.dst_port = dst_port
        self.rate_bps = rate_bps
        self.delay = delay
        #: time at which the transmitter becomes free again
        self._tx_free_at = 0.0
        self.packets_carried = 0
        self.busy_time = 0.0
        src.attach_link_tx(src_port, self.transmit)

    def serialization_time(self, packet: Packet) -> float:
        """Time to clock *packet* onto the line at the link rate."""
        if self.rate_bps is None:
            return 0.0
        return packet.size_bits / self.rate_bps

    def transmit(self, packet: Packet) -> None:
        """Accept *packet* from the source node and schedule delivery.

        Back-to-back packets queue on the transmitter: the next packet
        starts serialising only when the previous one has left.
        """
        now = self.kernel.now
        start = max(now, self._tx_free_at)
        ser = self.serialization_time(packet)
        self._tx_free_at = start + ser
        self.busy_time += ser
        arrival = start + ser + self.delay
        self.packets_carried += 1
        self.kernel.schedule(arrival,
                             lambda: self.dst.deliver(packet, self.dst_port))

    def utilization(self) -> float:
        """Fraction of elapsed time the transmitter was busy."""
        if self.kernel.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.kernel.now)
