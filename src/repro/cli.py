"""Command-line interface: ``python -m repro``.

Small operational conveniences for exploring the reproduction:

* ``inventory`` — the package map (what substitutes what);
* ``examples`` — list runnable example scripts;
* ``example NAME`` — run one example;
* ``results`` — print the experiment tables of the last benchmark run;
* ``stats`` — run the observed E1 scenario and report the
  co-simulation metrics (sync windows, null messages, lag histogram,
  kernel counters, per-cell and per-hop latency), exporting JSON
  alongside the ``BENCH_*.json`` artifacts; ``stats --service
  HOST:PORT`` instead dials a running job service and prints its live
  STATS introspection (queue depth, per-worker counters, merged
  completed-job telemetry);
* ``trace run`` — run the observed E1 scenario with full causal
  tracing and write the JSONL decision trace (optionally a
  Chrome/Perfetto trace too);
* ``trace export`` — convert an existing JSONL trace into a
  ``chrome://tracing``/Perfetto-loadable JSON;
* ``sweep`` — fan a declarative scenario matrix (traffic model ×
  port count × seed × sync mode × abstraction level) out over worker
  processes and aggregate the results into ``BENCH_sweep.json`` plus
  a human table (see ``docs/api/sweep.md``);
* ``equiv`` — replay identical seeded cell streams through the RTL
  designs and their behavioural twins and diff the contract surface
  (output cells, records, policing verdicts, counters); exit 1 on
  any divergence (see ``docs/api/behav.md``);
* ``shard`` — run a sharded multi-switch topology (one worker process
  per DUT shard, coupled over pipes or sockets by the conservative
  protocol); ``--mode both`` additionally replays the identical op
  stream in-process and diffs the output digests; ``--observe`` and
  ``--trace-dir`` turn on distributed telemetry — coordinator-stamped
  trace ids, per-shard span streams, merged coverage counters (see
  ``docs/api/shard.md``);
* ``serve`` — start the persistent scenario job service: a worker
  pool that outlives individual jobs (sharing compiled cell
  templates across them) behind a JSON-lines TCP endpoint;
  ``serve --status HOST:PORT`` dials a running service and prints
  its live STATS introspection instead of binding.
"""

from __future__ import annotations

import argparse
import importlib
import json
import runpy
import sys
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["main"]

_SUBPACKAGES = [
    ("netsim", "OPNET-equivalent discrete-event network simulator"),
    ("traffic", "traffic model library (CBR/Poisson/on-off/MMPP/MPEG)"),
    ("atm", "ATM model suite (cells, switching, policing, accounting)"),
    ("hdl", "VSS-equivalent event-driven HDL simulation kernel"),
    ("rtl", "RTL device-under-test designs"),
    ("behav", "behavioural DUT twins + cross-level equivalence"),
    ("board", "RAVEN-equivalent hardware test board model"),
    ("core", "CASTANET: coupling, sync protocol, interfaces, compare"),
    ("obs", "observability: metrics registry, decision traces"),
    ("sweep", "parallel scenario-matrix sweep runner"),
    ("shard", "sharded multi-switch topologies + job service"),
    ("analysis", "result collection and report rendering"),
]


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def _examples_dir() -> Path:
    return _repo_root() / "examples"


def _results_dir() -> Path:
    return _repo_root() / "benchmarks" / "results"


def _cmd_inventory(_args: argparse.Namespace) -> int:
    print("repro — CASTANET reproduction (DATE 1998)\n")
    for name, blurb in _SUBPACKAGES:
        module = importlib.import_module(f"repro.{name}")
        exported = len(getattr(module, "__all__", []))
        print(f"  repro.{name:<10} {blurb}  [{exported} exports]")
    return 0


def _list_examples() -> List[Path]:
    directory = _examples_dir()
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.py"))


def _cmd_examples(_args: argparse.Namespace) -> int:
    scripts = _list_examples()
    if not scripts:
        print("no examples directory found")
        return 1
    for script in scripts:
        doc = ""
        for line in script.read_text().splitlines():
            stripped = line.strip().strip('"').strip()
            if stripped and not stripped.startswith(("#", "!")):
                doc = stripped
                break
        print(f"  {script.stem:<28} {doc}")
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    target = _examples_dir() / f"{args.name}.py"
    if not target.is_file():
        known = ", ".join(p.stem for p in _list_examples())
        print(f"unknown example {args.name!r}; known: {known}",
              file=sys.stderr)
        return 2
    try:
        runpy.run_path(str(target), run_name="__main__")
    except SystemExit as exc:
        return int(exc.code or 0)
    return 0


def _cmd_results(_args: argparse.Namespace) -> int:
    directory = _results_dir()
    tables = sorted(directory.glob("*.txt")) if directory.is_dir() \
        else []
    if not tables:
        print("no benchmark results found — run:\n"
              "  pytest benchmarks/ --benchmark-only")
        return 1
    for table in tables:
        print(table.read_text().rstrip())
        print()
    return 0


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0.0:
        return "0"
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6),
                        ("ns", 1e-9)):
        if abs(value) >= scale:
            return f"{value / scale:.3g} {unit}"
    return f"{value:.3g} s"


def _print_histogram(label: str, hist: Dict[str, object]) -> None:
    print(f"  {label}: n={hist['count']}"
          f"  mean={_format_seconds(hist['mean'])}"
          f"  p50={_format_seconds(hist['p50'])}"
          f"  p99={_format_seconds(hist['p99'])}"
          f"  max={_format_seconds(hist['max'])}")
    for bucket in hist["buckets"]:
        le = bucket["le"]
        bound = "+inf" if le == "inf" else _format_seconds(le)
        print(f"      <= {bound:<8} {bucket['count']}")


#: provenance hop-pair metric -> human row label for the stats table
_HOP_LABELS = (
    ("prov.hop_s.source_to_post", "source -> sync post"),
    ("prov.hop_s.post_to_release", "sync queue wait"),
    ("prov.hop_s.release_to_ingress", "sync -> DUT ingress"),
    ("prov.hop_s.ingress_to_dut_out", "DUT processing"),
    ("prov.hop_s.dut_out_to_sink", "DUT -> sink"),
    ("prov.hop_s.release_to_sink", "switch -> sink"),
)


def _print_hop_table(histograms: Dict[str, Dict[str, object]]) -> None:
    """The per-hop latency summary derived from provenance spans."""
    rows = [(label, histograms[name])
            for name, label in _HOP_LABELS if name in histograms]
    covered = {name for name, _ in _HOP_LABELS}
    rows.extend((name[len("prov.hop_s."):], hist)
                for name, hist in sorted(histograms.items())
                if name.startswith("prov.hop_s.")
                and name not in covered)
    if not rows:
        return
    print("\ncell journey (per-hop latency):")
    print(f"  {'hop':<22} {'n':>5} {'mean':>9} {'p50':>9} "
          f"{'p99':>9} {'max':>9}")
    for label, hist in rows:
        print(f"  {label:<22} {hist['count']:>5} "
              f"{_format_seconds(hist['mean']):>9} "
              f"{_format_seconds(hist['p50']):>9} "
              f"{_format_seconds(hist['p99']):>9} "
              f"{_format_seconds(hist['max']):>9}")


def _parse_endpoint(value: str) -> tuple:
    """Parse a ``HOST:PORT`` CLI value (host defaults to loopback)."""
    host, _, port = value.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _print_service_stats(stats: Dict[str, object]) -> None:
    """Render one STATS introspection payload from a running job
    service (the ``{"op": "stats"}`` reply)."""
    running = stats["running"]
    suffix = f" ({', '.join(running)})" if running else ""
    print(f"service: queue depth {stats['queue_depth']}, "
          f"{len(running)} running job(s){suffix}")
    service = stats["service"]
    print(f"  jobs: {service['submitted']} submitted, "
          f"{service['completed']} done, "
          f"{service['errors']} error(s), "
          f"{service['crashes']} crash(es), "
          f"{service['timeouts']} timeout(s), "
          f"{service['retries']} retried")
    for worker in stats["workers"]:
        counters = worker["counters"]
        state = ("busy" if worker["busy"]
                 else "idle" if worker["alive"] else "dead")
        job = f" on {worker['job']}" if worker["job"] else ""
        print(f"  {worker['name']:<10} {state}{job} — "
              f"{counters['jobs']} job(s) ({counters['ok']} ok, "
              f"{counters['errors']} error(s)), "
              f"{counters['crashes']} crash(es), "
              f"{counters['timeouts']} timeout(s), "
              f"{counters['retries']} retried")
    telemetry = stats["telemetry"]
    print(f"  telemetry: {telemetry['jobs']} completed job(s), "
          f"{telemetry['trace_records']} trace record(s)")
    if telemetry.get("latency"):
        _print_histogram("ingress latency (merged)",
                         telemetry["latency"])
    sync = telemetry.get("sync") or {}
    if sync:
        print(f"  sync (merged): {sync.get('messages_posted', 0)} "
              f"posts, {sync.get('null_messages', 0)} nulls, "
              f"{sync.get('windows_granted', 0)} windows")
    provenance = telemetry.get("provenance")
    if provenance:
        print(f"  provenance (merged): "
              f"{provenance.get('cells_sampled', 0)}"
              f"/{provenance.get('cells_seen', 0)} cells, "
              f"{provenance.get('spans_recorded', 0)} spans")


def _service_stats(endpoint: str) -> int:
    """Dial a running job service and print its STATS payload."""
    from repro.shard import ServeClient

    try:
        with ServeClient(_parse_endpoint(endpoint)) as client:
            payload = client.stats()
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"cannot reach service at {endpoint}: {exc}",
              file=sys.stderr)
        return 2
    _print_service_stats(payload)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.service:
        # Live introspection of a running job service — no scenario
        # run, no BENCH artifact.
        return _service_stats(args.service)
    # Lazy import: the scenario pulls in the whole stack, and
    # repro.obs deliberately does not import it (repro.core imports
    # repro.obs — the reverse edge would be circular).
    from repro.obs.scenario import run_observed_e1

    report = run_observed_e1(cells=args.cells, load=args.load,
                             lockstep=args.lockstep, trace=args.trace,
                             sample=args.sample, profile=args.profile)
    workload = report["workload"]
    print(f"observed E1 scenario — {workload['cells']} cells, "
          f"load {workload['load']}, "
          f"{'lockstep' if args.lockstep else 'conservative'} sync")
    print(f"  {workload['hdl_clocks']} DUT clocks in "
          f"{workload['wall_s']:.3f} s wall "
          f"({workload['cycles_per_s']:,.0f} cycles/s)")

    print("\nsynchronisation:")
    for entity in report["entities"]:
        sync = entity.get("sync")
        if not sync:
            # Behavioural entities have no synchroniser to report.
            print(f"  level {entity.get('level', '?')} entity — "
                  "no sync protocol")
            continue
        print(f"  windows granted     {sync['windows_granted']}")
        print(f"  null messages       {sync['null_messages']}")
        print(f"  null msgs coalesced "
              f"{sync['null_messages_coalesced']}")
        print(f"  stale advances      {sync['stale_advances']}")
        print(f"  messages posted     {sync['messages_posted']}")
        print(f"  messages released   {sync['messages_released']}")
        print(f"  drains              {sync['drains']}")
        print(f"  max lag             "
              f"{_format_seconds(sync['max_lag_seconds'])}")

    print("\nkernels:")
    hdl = report["hdl_kernel"]
    net = report["netsim_kernel"]
    print(f"  hdl: {hdl['events_executed']} events, "
          f"{hdl['delta_cycles']} delta cycles, "
          f"{hdl['signal_events']} signal events, "
          f"{hdl['process_runs']} process runs")
    print(f"  netsim: {net['executed_events']} events, "
          f"{net['time_advances']} time advances, "
          f"peak queue {net['peak_pending_events']}")

    instruments = report.get("instruments", {})
    histograms = instruments.get("histograms", {})
    print("\ndistributions:")
    for name in ("sync.lag_s", "sync.queue_wait_s.cell",
                 "sync.queue_wait_s.tariff_tick",
                 "cosim.cell_ingress_latency_s",
                 "cosim.cell_e2e_latency_s"):
        if name in histograms:
            _print_histogram(name, histograms[name])
    unmatched = instruments.get("counters", {}).get(
        "cosim.latency_unmatched", 0)
    if unmatched:
        print(f"  WARNING: {unmatched} latency sample(s) unmatched")

    _print_hop_table(histograms)
    provenance = report.get("provenance")
    if provenance is not None:
        print(f"  cells traced: {provenance['cells_sampled']}"
              f"/{provenance['cells_seen']} "
              f"(1 in {provenance['sample']}), "
              f"{provenance['spans_recorded']} spans")
    if args.profile:
        print("\nhot-path profile:")
        for name in ("prof.netsim_run_s", "prof.hdl_run_s",
                     "prof.sync_advance_s", "prof.cell_compile_s"):
            if name in histograms:
                hist = histograms[name]
                print(f"  {name:<22} n={hist['count']:<6} "
                      f"total={_format_seconds(hist['total'])}")

    if args.json:
        path = Path(args.json)
        path.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
        print(f"\nwrote {path}")
    if args.trace:
        print(f"wrote trace {args.trace}")
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    # Lazy import — same circularity reason as stats.
    from repro.obs.scenario import run_observed_e1

    out = Path(args.out)
    if out.parent != Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    report = run_observed_e1(cells=args.cells, load=args.load,
                             lockstep=args.lockstep, trace=out,
                             sample=args.sample, profile=args.profile)
    provenance = report.get("provenance", {})
    print(f"wrote {report['trace_records']} trace record(s) to {out}")
    print(f"  cells traced: {provenance.get('cells_sampled', 0)}"
          f"/{provenance.get('cells_seen', 0)} "
          f"(1 in {provenance.get('sample', args.sample)}), "
          f"{provenance.get('spans_recorded', 0)} spans")
    if args.chrome:
        from repro.obs.chrome import (export_chrome_trace,
                                      load_trace_jsonl,
                                      validate_chrome_trace)
        payload = export_chrome_trace(load_trace_jsonl(out),
                                      path=args.chrome,
                                      snapshot=report)
        summary = validate_chrome_trace(payload)
        print(f"wrote Chrome trace {args.chrome} "
              f"({summary['events']} events, {summary['flows']} cell "
              f"flows) — open in chrome://tracing or ui.perfetto.dev")
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.obs.chrome import (ChromeTraceError, export_chrome_trace,
                                  load_trace_jsonl,
                                  validate_chrome_trace)

    source = Path(args.input)
    if not source.is_file():
        print(f"no such trace file: {source}", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else source.with_suffix("") \
        .with_suffix(".trace.json")
    snapshot = None
    if args.stats:
        stats_path = Path(args.stats)
        if not stats_path.is_file():
            print(f"no such stats file: {stats_path}", file=sys.stderr)
            return 2
        snapshot = json.loads(stats_path.read_text())
    try:
        records = load_trace_jsonl(source)
        payload = export_chrome_trace(records, path=out,
                                      snapshot=snapshot)
        summary = validate_chrome_trace(payload)
    except ChromeTraceError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    print(f"wrote Chrome trace {out} ({summary['events']} events, "
          f"{summary['flows']} cell flows, "
          f"{len(summary['tracks'])} tracks) — open in "
          f"chrome://tracing or ui.perfetto.dev")
    return 0


def _csv(values: str) -> List[str]:
    """Split a comma-separated CLI value, dropping empties."""
    return [item.strip() for item in values.split(",") if item.strip()]


def _cmd_equiv(args: argparse.Namespace) -> int:
    # Lazy import — the harness builds the full RTL + behavioural
    # stacks.
    from repro.behav import KINDS, run_equivalence

    kinds = _csv(args.duts) if args.duts else list(KINDS)
    unknown = [kind for kind in kinds if kind not in KINDS]
    if unknown:
        print(f"unknown DUT kind(s): {', '.join(unknown)}; "
              f"known: {', '.join(KINDS)}", file=sys.stderr)
        return 2
    report = run_equivalence(kinds=kinds, cells=args.cells,
                             seed=args.seed, clocking=args.clocking)
    print(f"cross-level equivalence — {args.cells} cells/kind, "
          f"seed {args.seed}, {args.clocking} clocking")
    for kind, entry in report["duts"].items():
        streams = entry["streams"]
        cells_out = sum(s["rtl_count"] for s in streams)
        verdict = "match" if entry["passed"] else "DIVERGED"
        print(f"  {kind:<12} {verdict:<9} "
              f"{cells_out} cell(s) out on {entry['ports']} port(s), "
              f"{entry['records']['rtl_count']} record(s), "
              f"{entry['decisions']['rtl_count']} decision(s)")
        if not entry["passed"]:
            for port, stream in enumerate(streams):
                for mm in stream["mismatches"]:
                    print(f"    port {port} cell {mm['index']}: "
                          f"rtl={mm['rtl']} behav={mm['behav']}")
            for label in ("records", "decisions"):
                for mm in entry[label]["mismatches"]:
                    print(f"    {label} {mm['index']}: "
                          f"rtl={mm['rtl']} behav={mm['behav']}")
            if not entry["counters"]["matched"]:
                print(f"    counters rtl={entry['counters']['rtl']}")
                print(f"    counters behav="
                      f"{entry['counters']['behav']}")
    if args.json:
        path = Path(args.json)
        path.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
        print(f"\nwrote {path}")
    return 0 if report["passed"] else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Lazy import (same reason as stats: the sweep pulls in the whole
    # co-simulation stack).
    from repro.sweep import (SweepRunner, SweepSpec, SweepSpecError,
                             render_sweep_report)

    try:
        if args.spec:
            spec = SweepSpec.from_file(args.spec)
        else:
            spec = SweepSpec(
                traffic=_csv(args.traffic),
                ports=[int(v) for v in _csv(args.ports)],
                seeds=[int(v) for v in _csv(args.seeds)],
                sync=_csv(args.sync),
                level=_csv(args.levels),
                cells=args.cells, load=args.load)
        if args.trace_dir:
            spec.trace_dir = args.trace_dir
        runner = SweepRunner(spec, jobs=args.jobs,
                             timeout_s=args.timeout)
    except (SweepSpecError, ValueError) as exc:
        print(f"invalid sweep: {exc}", file=sys.stderr)
        return 2

    runs = spec.expand()
    print(f"sweeping {len(runs)} scenario(s) over "
          f"{runner.jobs} worker(s), {runner.timeout_s:g} s/run budget")
    payload = runner.run()
    print()
    print(render_sweep_report(payload))
    if args.json:
        path = Path(args.json)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        print(f"\nwrote {path}")
    aggregate = payload["aggregate"]
    ok = (aggregate["runs_passed"] == aggregate["runs_total"])
    return 0 if ok else 1


def _print_topology_report(report: Dict[str, object]) -> None:
    totals = report["totals"]
    sync = totals["sync"]
    print(f"  mode {report['mode']}: {totals['cells_in']} cells in, "
          f"{totals['output_cells']} out, "
          f"{totals['records']} record(s), "
          f"{totals['clocks']} DUT clocks in "
          f"{report['wall_s']:.3f} s wall "
          f"({report['cycles_per_s']:,.0f} cycles/s aggregate)")
    for shard in report["shards"]:
        result = shard["result"]
        exchange = shard["exchange"]
        frames = (exchange["frames_sent"]
                  + exchange["frames_received"])
        octets = (exchange["bytes_sent"]
                  + exchange["bytes_received"])
        print(f"    {shard['id']:<10} {shard['level']:<6} "
              f"{result['cells_in']:>4} in  "
              f"{result['output_cells']:>4} out  "
              f"{len(result['records']):>3} rec  "
              f"{frames:>4} frame(s)  "
              f"{octets:>8,} B")
    print(f"  sync: {sync['messages_posted']} posts, "
          f"{sync['null_messages']} nulls "
          f"({sync['null_messages_coalesced']} coalesced), "
          f"{sync['windows_granted']} windows")
    if totals["frames"]:
        print(f"  wire: {totals['bytes']:,} octets in "
              f"{totals['frames']} frame(s) "
              f"({totals['bytes'] / totals['frames']:,.0f} B/frame)")
    telemetry = report.get("telemetry")
    if telemetry:
        spans = telemetry["spans"]
        shards_by_cell: Dict[object, set] = {}
        for span in spans:
            shards_by_cell.setdefault(span.get("cell"), set()).add(
                span.get("shard"))
        cross = sum(1 for shards_seen in shards_by_cell.values()
                    if len(shards_seen) > 1)
        print(f"  telemetry: {len(spans)} span(s) over "
              f"{len(shards_by_cell)} cell(s), "
              f"{cross} cross-shard chain(s), "
              f"{telemetry['trace_records']} trace record(s)")
    print(f"  digest {report['digest'][:16]}…")


def _cmd_shard(args: argparse.Namespace) -> int:
    # Lazy import — the topology pulls in the whole stack.
    from repro.shard import (ShardError, ShardSpec, ShardSpecError,
                             TopologySpec, run_topology)

    try:
        if args.spec:
            spec = TopologySpec.from_file(args.spec)
            if args.transport:
                spec.transport = args.transport
        else:
            levels = _csv(args.levels)
            if len(levels) == 1:
                levels = levels * args.shards
            if len(levels) != args.shards:
                raise ShardSpecError(
                    f"--levels names {len(levels)} level(s) for "
                    f"{args.shards} shard(s)")
            spec = TopologySpec(
                shards=[ShardSpec(f"shard{i}", level=levels[i],
                                  num_ports=args.ports)
                        for i in range(args.shards)],
                cells=args.cells, seed=args.seed, chain=args.chain,
                transport=args.transport or "pipe",
                window_slots=args.window_slots)
        if args.trace_dir:
            spec.trace_dir = args.trace_dir
        if args.observe:
            spec.observe = True
    except ShardSpecError as exc:
        print(f"invalid topology: {exc}", file=sys.stderr)
        return 2

    shape = ", ".join(f"{s.id}:{s.level}" for s in spec.shards)
    print(f"sharded topology — {len(spec.shards)} shard(s) [{shape}], "
          f"{spec.cells} cells/shard, seed {spec.seed}, "
          f"{'chained' if spec.chain else 'independent'}, "
          f"{spec.transport} transport")
    modes = ["local", "sharded"] if args.mode == "both" \
        else [args.mode]
    reports = {}
    try:
        for mode in modes:
            reports[mode] = run_topology(spec, mode=mode)
            _print_topology_report(reports[mode])
    except ShardError as exc:
        print(f"shard failure: {exc}", file=sys.stderr)
        return 1

    matched = True
    if args.mode == "both":
        matched = (reports["local"]["digest"]
                   == reports["sharded"]["digest"])
        if matched:
            print("  output cell streams byte-identical across modes")
        else:
            print("  DIVERGED: sharded output differs from the "
                  "single-process reference", file=sys.stderr)
            for mode in modes:
                for shard in reports[mode]["shards"]:
                    print(f"    {mode}/{shard['id']}: "
                          f"{shard['digests']}", file=sys.stderr)
    if args.json:
        path = Path(args.json)
        payload = reports[modes[-1]] if len(modes) == 1 else {
            "benchmark": "shard_topology",
            "modes": reports,
            "matched": matched,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        print(f"\nwrote {path}")
    return 0 if matched else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.status:
        # Dial a running service instead of binding one.
        return _service_stats(args.status)
    # Lazy import — the service spawns the sweep scenario workers.
    from repro.shard import JobService

    try:
        service = JobService(jobs=args.jobs, timeout_s=args.timeout,
                             host=args.host, port=args.port)
        service.start()
    except (ValueError, OSError) as exc:
        print(f"cannot start job service: {exc}", file=sys.stderr)
        return 2
    host, port = service.address
    print(f"serve: listening on {host}:{port} — {service.jobs} "
          f"persistent worker(s), {service.timeout_s:g} s/job budget",
          flush=True)
    print("serve: submit JSON-lines requests "
          "({\"op\": \"submit\", \"run\": {...}}); "
          "{\"op\": \"shutdown\"} stops the service", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    stats = service.stats
    print(f"serve: shut down after {stats['submitted']} job(s) "
          f"({stats['completed']} done, {stats['errors']} error(s), "
          f"{stats['crashes']} crash(es), "
          f"{stats['timeouts']} timeout(s))")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CASTANET reproduction utilities")
    commands = parser.add_subparsers(dest="command")
    commands.add_parser("inventory",
                        help="show the package map").set_defaults(
        fn=_cmd_inventory)
    commands.add_parser("examples",
                        help="list example scripts").set_defaults(
        fn=_cmd_examples)
    example = commands.add_parser("example", help="run one example")
    example.add_argument("name")
    example.set_defaults(fn=_cmd_example)
    commands.add_parser(
        "results",
        help="print the latest benchmark tables").set_defaults(
        fn=_cmd_results)
    stats = commands.add_parser(
        "stats",
        help="run the observed E1 scenario and report co-simulation "
             "metrics")
    stats.add_argument("--cells", type=int, default=64,
                       help="total cell budget (default 64)")
    stats.add_argument("--load", type=float, default=0.25,
                       help="per-port line occupancy (default 0.25)")
    stats.add_argument("--lockstep", action="store_true",
                       help="use the naive per-clock synchroniser "
                            "(the E2 ablation)")
    stats.add_argument("--json",
                       default=str(_repo_root() / "BENCH_stats.json"),
                       help="metrics JSON output path "
                            "(default BENCH_stats.json; '' disables)")
    stats.add_argument("--trace", default=None,
                       help="also write a JSON-lines decision trace "
                            "to this path")
    stats.add_argument("--sample", type=int, default=1,
                       help="trace 1 in N cell journeys (default 1 "
                            "= every cell)")
    stats.add_argument("--profile", action="store_true",
                       help="attach wall-clock profiling spans to "
                            "the kernel hot paths")
    stats.add_argument("--service", default=None, metavar="HOST:PORT",
                       help="dial a running 'serve' job service and "
                            "print its live STATS introspection "
                            "instead of running the scenario")
    stats.set_defaults(fn=_cmd_stats)
    trace = commands.add_parser(
        "trace",
        help="causal cell tracing: record JSONL traces and export "
             "them for chrome://tracing / Perfetto")
    trace_commands = trace.add_subparsers(dest="trace_command")
    trace_run = trace_commands.add_parser(
        "run",
        help="run the observed E1 scenario with causal tracing and "
             "write the JSONL decision trace")
    trace_run.add_argument("--cells", type=int, default=64,
                           help="total cell budget (default 64)")
    trace_run.add_argument("--load", type=float, default=0.25,
                           help="per-port line occupancy "
                                "(default 0.25)")
    trace_run.add_argument("--lockstep", action="store_true",
                           help="use the naive per-clock "
                                "synchroniser (the E2 ablation)")
    trace_run.add_argument("--sample", type=int, default=1,
                           help="trace 1 in N cell journeys "
                                "(default 1 = every cell)")
    trace_run.add_argument("--profile", action="store_true",
                           help="attach wall-clock profiling spans "
                                "to the kernel hot paths")
    trace_run.add_argument("--out", default="traces/e1.trace.jsonl",
                           help="JSONL trace output path "
                                "(default traces/e1.trace.jsonl)")
    trace_run.add_argument("--chrome", default=None,
                           help="also export a Chrome/Perfetto trace "
                                "JSON to this path")
    trace_run.set_defaults(fn=_cmd_trace_run)
    trace_export = trace_commands.add_parser(
        "export",
        help="convert a JSONL trace into a Chrome/Perfetto trace "
             "JSON (validated after writing)")
    trace_export.add_argument("input",
                              help="JSONL trace file (from "
                                   "'trace run' or 'stats --trace')")
    trace_export.add_argument("--out", default=None,
                              help="Chrome trace output path "
                                   "(default: input with a "
                                   ".trace.json suffix)")
    trace_export.add_argument("--stats", default=None,
                              help="BENCH_stats.json snapshot to "
                                   "embed as trace metadata")
    trace_export.set_defaults(fn=_cmd_trace_export)
    sweep = commands.add_parser(
        "sweep",
        help="run a scenario matrix over worker processes and "
             "aggregate the results")
    sweep.add_argument("--spec", default=None,
                       help="TOML/JSON sweep spec (see "
                            "examples/sweep_small.toml); flags below "
                            "define the matrix when omitted")
    sweep.add_argument("--traffic", default="cbr",
                       help="comma list of traffic models "
                            "(cbr,poisson,onoff; default cbr)")
    sweep.add_argument("--ports", default="4",
                       help="comma list of switch port counts "
                            "(default 4)")
    sweep.add_argument("--seeds", default="0",
                       help="comma list of RNG seeds (default 0)")
    sweep.add_argument("--sync", default="conservative",
                       help="comma list of sync modes "
                            "(conservative,lockstep)")
    sweep.add_argument("--levels", default="rtl",
                       help="comma list of DUT abstraction levels "
                            "(rtl,behav; default rtl)")
    sweep.add_argument("--cells", type=int, default=32,
                       help="cell budget per run (default 32)")
    sweep.add_argument("--load", type=float, default=0.25,
                       help="per-port line occupancy (default 0.25)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: spec value, "
                            "or 2); 1 runs serially")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock budget in seconds "
                            "(default: spec value, or 120)")
    sweep.add_argument("--trace-dir", default=None,
                       help="write one JSONL decision trace per run "
                            "to this directory")
    sweep.add_argument("--json",
                       default=str(_repo_root() / "BENCH_sweep.json"),
                       help="sweep JSON output path "
                            "(default BENCH_sweep.json; '' disables)")
    sweep.set_defaults(fn=_cmd_sweep)
    equiv = commands.add_parser(
        "equiv",
        help="diff the behavioural DUT twins against the RTL designs "
             "on identical seeded cell streams")
    equiv.add_argument("--duts", default=None,
                       help="comma list of DUT kinds (port_module,"
                            "switch,policer,accounting; default all)")
    equiv.add_argument("--cells", type=int, default=64,
                       help="cells per DUT kind (default 64)")
    equiv.add_argument("--seed", type=int, default=0,
                       help="base RNG seed (default 0)")
    equiv.add_argument("--clocking", default="cycle",
                       choices=("cycle", "event"),
                       help="RTL-side clocking scheme (default cycle)")
    equiv.add_argument("--json",
                       default=str(_repo_root() / "BENCH_equiv.json"),
                       help="report JSON output path "
                            "(default BENCH_equiv.json; '' disables)")
    equiv.set_defaults(fn=_cmd_equiv)
    shard = commands.add_parser(
        "shard",
        help="run a sharded multi-switch topology (one process per "
             "DUT shard, conservative protocol over pipes/sockets)")
    shard.add_argument("--spec", default=None,
                       help="TOML/JSON topology spec (see examples/"
                            "topology_two_switch.toml); flags below "
                            "define the topology when omitted")
    shard.add_argument("--shards", type=int, default=2,
                       help="shard count (default 2)")
    shard.add_argument("--levels", default="auto",
                       help="comma list of per-shard DUT levels "
                            "(rtl,behav,auto; one value applies to "
                            "all shards; default auto)")
    shard.add_argument("--ports", type=int, default=4,
                       help="switch ports per shard (default 4)")
    shard.add_argument("--cells", type=int, default=48,
                       help="seeded stimulus cells per shard "
                            "(default 48)")
    shard.add_argument("--seed", type=int, default=0,
                       help="stimulus RNG seed (default 0)")
    shard.add_argument("--chain", action="store_true",
                       help="forward shard k's output cells into "
                            "shard k+1 (two-switch cell flows)")
    shard.add_argument("--transport", default=None,
                       choices=("pipe", "socket", "shm"),
                       help="shard coupling transport (default pipe; "
                            "shm is the same-host shared-memory ring; "
                            "overrides the spec file's choice)")
    shard.add_argument("--window-slots", type=int, default=64,
                       help="cell slots per conservative driving "
                            "window (default 64)")
    shard.add_argument("--mode", default="sharded",
                       choices=("sharded", "local", "both"),
                       help="sharded processes, in-process reference, "
                            "or both + digest diff (default sharded)")
    shard.add_argument("--trace-dir", default=None,
                       help="write one JSONL decision trace per "
                            "shard to this directory")
    shard.add_argument("--observe", action="store_true",
                       help="enable metrics/provenance instruments "
                            "in every shard and merge the per-shard "
                            "telemetry into the report (trace ids "
                            "stamped into the op stream)")
    shard.add_argument("--json", default=None,
                       help="report JSON output path (default: none; "
                            "the committed BENCH_shard.json baseline "
                            "comes from benchmarks/check_regression"
                            ".py)")
    shard.set_defaults(fn=_cmd_shard)
    serve = commands.add_parser(
        "serve",
        help="start the persistent scenario job service (JSON-lines "
             "TCP endpoint over a long-lived worker pool)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="persistent worker processes (default 2)")
    serve.add_argument("--timeout", type=float, default=120.0,
                       help="per-job wall-clock budget in seconds "
                            "(default 120)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0 = ephemeral, "
                            "printed on startup)")
    serve.add_argument("--status", default=None, metavar="HOST:PORT",
                       help="dial a running service and print its "
                            "live STATS introspection instead of "
                            "binding")
    serve.set_defaults(fn=_cmd_serve)
    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)
