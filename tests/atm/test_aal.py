"""Unit and property tests for AAL5 segmentation/reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import (AalError, AtmCell, PAYLOAD_OCTETS, Reassembler,
                       crc32_aal5, segment)


def test_crc32_known_vector():
    # Standard CRC-32 check value for "123456789" is 0xCBF43926 for the
    # reflected variant; AAL5 uses the non-reflected MSB-first variant,
    # whose check value is 0xFC891918.
    data = [ord(c) for c in "123456789"]
    assert crc32_aal5(data) == 0xFC891918


def test_small_pdu_single_cell():
    cells = segment(1, 100, [1, 2, 3])
    assert len(cells) == 1
    assert cells[0].pt & 1  # AUU marks the last cell


def test_pdu_filling_exactly_one_cell():
    # 40 bytes + 8 trailer = 48 -> one cell.
    cells = segment(1, 100, list(range(40)))
    assert len(cells) == 1


def test_pdu_one_byte_over_boundary():
    # 41 bytes + 8 trailer = 49 -> two cells.
    cells = segment(1, 100, list(range(41)))
    assert len(cells) == 2
    assert not cells[0].pt & 1
    assert cells[1].pt & 1


def test_round_trip():
    pdu = list(range(200))
    cells = segment(3, 33, [b % 256 for b in pdu])
    reasm = Reassembler()
    result = None
    for cell in cells:
        out = reasm.push(cell)
        if out is not None:
            result = out
    assert result == [b % 256 for b in pdu]
    assert reasm.completed == 1


def test_interleaved_connections():
    pdu_a = [1] * 100
    pdu_b = [2] * 100
    cells_a = segment(1, 1, pdu_a)
    cells_b = segment(1, 2, pdu_b)
    reasm = Reassembler()
    results = {}
    for ca, cb in zip(cells_a, cells_b):
        for cell in (ca, cb):
            out = reasm.push(cell)
            if out is not None:
                results[cell.connection()] = out
    assert results[(1, 1)] == pdu_a
    assert results[(1, 2)] == pdu_b


def test_corrupted_payload_detected():
    cells = segment(1, 1, list(range(100)))
    broken = AtmCell(vpi=cells[0].vpi, vci=cells[0].vci, pt=cells[0].pt,
                     payload=tuple([cells[0].payload[0] ^ 0xFF]
                                   + list(cells[0].payload[1:])))
    reasm = Reassembler()
    reasm.push(broken)
    with pytest.raises(AalError):
        for cell in cells[1:]:
            reasm.push(cell)
    assert reasm.crc_errors == 1


def test_lost_last_cell_keeps_pdu_pending():
    cells = segment(1, 1, list(range(100)))
    reasm = Reassembler()
    for cell in cells[:-1]:
        assert reasm.push(cell) is None
    assert reasm.pending_connections() == 1


def test_runaway_pdu_bounded():
    reasm = Reassembler(max_pdu_octets=96)
    filler = AtmCell.with_payload(1, 1, [0] * PAYLOAD_OCTETS)
    with pytest.raises(AalError):
        for _ in range(10):
            reasm.push(filler)


def test_oversized_pdu_rejected():
    with pytest.raises(AalError):
        segment(1, 1, [0] * 65536)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=0, max_size=500),
       st.integers(0, 255), st.integers(0, 65535))
def test_property_segment_reassemble_identity(pdu, vpi, vci):
    reasm = Reassembler()
    result = None
    for cell in segment(vpi, vci, pdu):
        assert cell.connection() == (vpi, vci)
        out = reasm.push(cell)
        if out is not None:
            result = out
    assert result == pdu


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=0, max_size=300))
def test_property_cell_count_formula(pdu):
    cells = segment(0, 1, pdu)
    needed = len(pdu) + 8
    expected = (needed + PAYLOAD_OCTETS - 1) // PAYLOAD_OCTETS
    assert len(cells) == expected
