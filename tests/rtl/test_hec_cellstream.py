"""Tests for HEC circuits and the octet-serial cell stream.

The HEC tests co-verify the RTL circuit against the algorithmic
reference in :mod:`repro.atm.hec` — the paper's methodology in
miniature.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import AtmCell, hec_octet
from repro.hdl import Simulator
from repro.rtl import (CellReceiver, CellSender, CellStreamPort,
                       HecChecker, HecGenerator, crc8_step)


def make_clocked_sim(period=10):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=period)
    return sim, clk


def feed_octets(sim, dut, octets, sof_first=True):
    """Clock one octet per cycle into a HEC circuit's d/d_valid/sof."""
    for index, octet in enumerate(octets):
        dut.d.drive(octet)
        dut.d_valid.drive("1")
        dut.sof.drive("1" if (sof_first and index == 0) else "0")
        sim.run_for(10)
    dut.d_valid.drive("0")
    sim.run_for(10)


class TestCrc8Step:
    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_property_matches_reference(self, header):
        crc = 0
        for octet in header:
            crc = crc8_step(crc, octet)
        assert crc ^ 0x55 == hec_octet(header)


class TestHecGenerator:
    def test_generates_reference_hec(self):
        sim, clk = make_clocked_sim()
        gen = HecGenerator(sim, "hec", clk)
        sim.run(until=2)
        header = [0x12, 0x34, 0x56, 0x78]
        feed_octets(sim, gen, header)
        assert gen.hec.as_int() == hec_octet(header)

    def test_valid_pulse_once(self):
        sim, clk = make_clocked_sim()
        gen = HecGenerator(sim, "hec", clk)
        pulses = []
        sim.add_process("watch",
                        lambda s: pulses.append(s.now)
                        if gen.hec_valid.rising() else None,
                        sensitivity=[gen.hec_valid])
        sim.run(until=2)
        feed_octets(sim, gen, [1, 2, 3, 4])
        sim.run_for(50)
        assert len(pulses) == 1

    def test_sof_restarts_computation(self):
        sim, clk = make_clocked_sim()
        gen = HecGenerator(sim, "hec", clk)
        sim.run(until=2)
        feed_octets(sim, gen, [0xFF, 0xFF])   # partial header, abandoned
        feed_octets(sim, gen, [1, 2, 3, 4])   # fresh sof
        assert gen.hec.as_int() == hec_octet([1, 2, 3, 4])

    def test_extra_octets_ignored(self):
        sim, clk = make_clocked_sim()
        gen = HecGenerator(sim, "hec", clk)
        sim.run(until=2)
        feed_octets(sim, gen, [1, 2, 3, 4, 99, 98])
        assert gen.hec.as_int() == hec_octet([1, 2, 3, 4])


class TestHecChecker:
    def test_good_header_pulses_ok(self):
        sim, clk = make_clocked_sim()
        chk = HecChecker(sim, "chk", clk)
        sim.run(until=2)
        header = [0xA, 0xB, 0xC, 0xD]
        feed_octets(sim, chk, header + [hec_octet(header)])
        assert chk.headers_checked == 1
        assert chk.errors_seen == 0

    def test_bad_header_pulses_err(self):
        sim, clk = make_clocked_sim()
        chk = HecChecker(sim, "chk", clk)
        sim.run(until=2)
        header = [0xA, 0xB, 0xC, 0xD]
        feed_octets(sim, chk, header + [hec_octet(header) ^ 0x01])
        assert chk.errors_seen == 1

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4),
           st.integers(0, 39))
    def test_property_single_bit_errors_detected(self, header, bitpos):
        full = header + [hec_octet(header)]
        full[bitpos // 8] ^= 1 << (bitpos % 8)
        sim, clk = make_clocked_sim()
        chk = HecChecker(sim, "chk", clk)
        sim.run(until=2)
        feed_octets(sim, chk, full)
        assert chk.errors_seen == 1


class TestCellStream:
    def test_cell_round_trip(self):
        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk)
        receiver = CellReceiver(sim, "rx", clk, sender.port)
        cell = AtmCell.with_payload(5, 77, list(range(48)))
        sender.send(cell.to_octets())
        sim.run(until=10 * 60)
        assert len(receiver.cells) == 1
        assert AtmCell.from_octets(receiver.cells[0]) == cell

    def test_back_to_back_cells(self):
        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk)
        receiver = CellReceiver(sim, "rx", clk, sender.port)
        cells = [AtmCell.with_payload(1, i + 1, [i]) for i in range(3)]
        for cell in cells:
            sender.send(cell.to_octets())
        sim.run(until=10 * 200)
        assert [AtmCell.from_octets(c).vci for c in receiver.cells] \
            == [1, 2, 3]
        assert sender.backlog == 0
        assert receiver.framing_errors == 0

    def test_gap_octets_insert_idle_clocks(self):
        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk, gap_octets=3)
        receiver = CellReceiver(sim, "rx", clk, sender.port)
        for i in range(2):
            sender.send(AtmCell.with_payload(1, i + 1, []).to_octets())
        sim.run(until=10 * 130)
        assert len(receiver.cells) == 2
        # second cell starts >= 53 + 3 clocks after the first
        # (verified indirectly: both arrive intact despite the gap)
        assert receiver.framing_errors == 0

    def test_sender_rejects_wrong_length(self):
        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk)
        with pytest.raises(ValueError):
            sender.send([0] * 52)
        with pytest.raises(ValueError):
            sender.send([0] * 54)

    def test_sender_rejects_wrong_length_bulk(self):
        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk, playback="bulk")
        with pytest.raises(ValueError):
            sender.send([0] * 52)
        with pytest.raises(ValueError):
            sender.send([0] * 54)
        assert sender.cells_sent == 0

    @pytest.mark.parametrize("playback", ["generator", "bulk"])
    def test_idle_gap_costs_no_process_runs(self, playback):
        """Edge gating: an idle link must not burn process dispatches.

        The receiver parks on the next rising edge of ``valid`` and the
        sender parks on the queue-refill event, so a long idle stretch
        after the last cell adds zero process runs (the CycleEngine has
        no clock process of its own, making the floor exact)."""
        from repro.hdl import CycleEngine
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        CycleEngine(sim, clk, period=10)
        sender = CellSender(sim, "tx", clk, playback=playback)
        receiver = CellReceiver(sim, "rx", clk, sender.port)
        sender.send(AtmCell.with_payload(1, 1, []).to_octets())
        sim.run(until=10 * 60)       # cell fully delivered
        assert len(receiver.cells) == 1
        busy_runs = sim.process_runs
        sim.run(until=10 * 1060)     # 1000 further idle clocks
        assert sim.process_runs == busy_runs

    def test_idle_gap_event_clock_only_clock_runs(self):
        """Same regression under the event-driven clock: the idle
        stretch adds only the clock generator's own resumptions — the
        sender/receiver contribute none."""
        # baseline: a bare clock over the same window
        ref_sim, _ = make_clocked_sim()
        ref_sim.run(until=10 * 60)
        ref_busy = ref_sim.process_runs
        ref_sim.run(until=10 * 1060)
        clock_only = ref_sim.process_runs - ref_busy

        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk, playback="generator")
        receiver = CellReceiver(sim, "rx", clk, sender.port)
        sender.send(AtmCell.with_payload(1, 1, []).to_octets())
        sim.run(until=10 * 60)
        assert len(receiver.cells) == 1
        busy_runs = sim.process_runs
        sim.run(until=10 * 1060)
        assert sim.process_runs - busy_runs == clock_only

    def test_cells_sent_counter_and_idle_between(self):
        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk)
        receiver = CellReceiver(sim, "rx", clk, sender.port)
        sender.send(AtmCell.with_payload(1, 1, []).to_octets())
        sim.run(until=10 * 80)
        assert sender.cells_sent == 1
        assert sender.port.valid.value == "0"  # idle after the cell

    def test_on_cell_callback(self):
        sim, clk = make_clocked_sim()
        sender = CellSender(sim, "tx", clk)
        seen = []
        CellReceiver(sim, "rx", clk, sender.port, on_cell=seen.append)
        sender.send(AtmCell.with_payload(2, 9, [7]).to_octets())
        sim.run(until=10 * 60)
        assert len(seen) == 1
        assert AtmCell.from_octets(seen[0]).vci == 9

    def test_external_port_sharing(self):
        sim, clk = make_clocked_sim()
        port = CellStreamPort(sim, "shared")
        sender = CellSender(sim, "tx", clk, port=port)
        receiver = CellReceiver(sim, "rx", clk, port)
        sender.send(AtmCell.with_payload(1, 5, []).to_octets())
        sim.run(until=10 * 60)
        assert len(receiver.cells) == 1
        assert len(port.signals()) == 3
