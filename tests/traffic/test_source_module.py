"""Integration tests: traffic sources feeding a network model."""


from repro.netsim import Network, Packet, SinkModule
from repro.traffic import (ConstantBitRate, PoissonArrivals, TrafficSource,
                           sample_arrivals)


def build_source_sink(arrivals, count=None, packet_factory=None):
    net = Network()
    node = net.add_node("n")
    src = TrafficSource("src", arrivals, count=count,
                        packet_factory=packet_factory)
    sink = SinkModule("sink", keep=True)
    node.add_module(src)
    node.add_module(sink)
    node.connect(src, 0, sink, 0)
    return net, src, sink


def test_cbr_source_emits_on_schedule():
    net, src, sink = build_source_sink(ConstantBitRate(period=1.0), count=5)
    net.run()
    assert src.emitted == 5
    assert [p.creation_time for p in sink.received] == [1, 2, 3, 4, 5]


def test_default_packets_are_atm_cell_sized():
    net, src, sink = build_source_sink(ConstantBitRate(period=1.0), count=2)
    net.run()
    assert all(p.size_bits == 424 for p in sink.received)
    assert [p["seq"] for p in sink.received] == [0, 1]


def test_custom_packet_factory():
    factory = lambda i: Packet(size_bits=8, fields={"VPI": i % 3})
    net, src, sink = build_source_sink(ConstantBitRate(period=0.5),
                                       count=6, packet_factory=factory)
    net.run()
    assert [p["VPI"] for p in sink.received] == [0, 1, 2, 0, 1, 2]


def test_unbounded_source_with_run_until():
    net, src, sink = build_source_sink(ConstantBitRate(period=1.0))
    net.run(until=10.5)
    assert src.emitted == 10


def test_poisson_source_count_matches():
    net, src, sink = build_source_sink(PoissonArrivals(rate=100.0, seed=1),
                                       count=50)
    net.run()
    assert len(sink.received) == 50


def test_sample_arrivals_resets_first():
    p = PoissonArrivals(rate=10.0, seed=5)
    a = sample_arrivals(p, 10)
    b = sample_arrivals(p, 10)
    assert a == b
    assert a == sorted(a)
