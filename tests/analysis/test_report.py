"""Tests for result collection and report rendering."""

import math

import pytest

from repro.analysis import (EventAccounting, ExperimentResult,
                            format_table, histogram, speedup)


class TestEventAccounting:
    def test_ratio(self):
        acc = EventAccounting(netsim_events=10, hdl_events=500)
        assert acc.event_ratio == 50.0

    def test_zero_netsim_events(self):
        assert EventAccounting(netsim_events=0,
                               hdl_events=5).event_ratio == math.inf
        assert EventAccounting().event_ratio == 0.0


class TestSpeedup:
    def test_normal(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_improved(self):
        assert speedup(1.0, 0.0) == math.inf


class TestFormatTable:
    def test_columns_and_values(self):
        rows = [ExperimentResult("a", {"x": 1.5, "y": "hi"}),
                ExperimentResult("b", {"x": 2.0})]
        text = format_table("Title", ["x", "y"], rows)
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "case" in lines[2]
        assert "1.5" in text
        assert "hi" in text
        assert text.splitlines()[-1].startswith("b")

    def test_empty_rows(self):
        text = format_table("T", ["x"], [])
        assert "case" in text

    def test_result_getitem(self):
        row = ExperimentResult("a", {"x": 3})
        assert row["x"] == 3


class TestHistogram:
    def test_empty(self):
        assert "(no samples)" in histogram([])

    def test_single_value(self):
        text = histogram([2.0, 2.0, 2.0])
        assert "#" in text
        assert "3" in text

    def test_counts_sum_to_samples(self):
        values = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        text = histogram(values, bins=5)
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()]
        assert sum(counts) == len(values)

    def test_title_included(self):
        assert histogram([1.0], title="Latency").splitlines()[0] \
            == "Latency"

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)
