"""The fixed per-hop latency model of the behavioural twins.

A behavioural twin processes whole cells in zero simulated delta time,
but its outputs must still carry *plausible* timestamps — otherwise a
mixed-level topology would see behavioural hops answer instantly while
RTL hops take a cell time, and cross-level stream comparisons would
reorder.  The model is deliberately simple and fixed (DESIGN.md
discusses the rationale):

* **serialisation** — an octet-serial line carries one cell per
  :attr:`~repro.core.timebase.TimeBase.cell_time_seconds`; a cell
  arriving while the line is busy waits for it
  (:class:`SerialLine.occupy`).  This reproduces exactly the
  store-and-forward latency the RTL pays clocking 53 octets through a
  port.
* **pipeline** — a fixed number of DUT clocks between ingress
  completion and egress start (one clock for the port module and
  policer, the GCU lookup latency for the switch fabric), matching the
  RTL pipeline depth.

No queueing-theoretic modelling beyond that: contention effects inside
a twin reduce to the per-line busy times, which is the level of detail
the equivalence harness can actually verify against the RTL.
"""

from __future__ import annotations

import math

from ..core.timebase import TimeBase

__all__ = ["SerialLine", "hop_latency_seconds"]


class SerialLine:
    """Busy-time bookkeeping of one octet-serial cell line.

    Tracks the time until which the line is occupied; cells occupy it
    back to back, so a burst arriving faster than one cell per cell
    time queues exactly like octets queue in an RTL transmit FIFO.
    """

    __slots__ = ("free_at",)

    def __init__(self) -> None:
        #: netsim seconds until which the line is busy
        self.free_at = 0.0

    def occupy(self, start: float, duration: float) -> float:
        """Occupy the line for *duration* seconds from *start* (or from
        the end of the current transfer, whichever is later); returns
        the completion time."""
        begin = start if start > self.free_at else self.free_at
        done = begin + duration
        self.free_at = done
        return done

    def backlog_cells(self, at: float, duration: float) -> int:
        """Whole cells' worth of busy time still ahead at time *at* —
        the behavioural analogue of an RTL transmit queue's depth."""
        ahead = self.free_at - at
        if ahead <= 0.0:
            return 0
        return int(math.ceil(ahead / duration - 1e-9))


def hop_latency_seconds(timebase: TimeBase,
                        pipeline_clocks: int = 1) -> float:
    """Fixed pipeline latency of one behavioural hop: *pipeline_clocks*
    DUT clocks in netsim seconds (the serialisation delay is modelled
    separately by :class:`SerialLine`)."""
    return timebase.to_seconds(
        timebase.clocks_to_ticks(pipeline_clocks))
