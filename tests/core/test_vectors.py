"""Tests for conformance test vectors, including a full conformance
run against the RTL port module."""

import pytest

from repro.atm import AtmCell
from repro.core import (ConformanceVector, VectorBuilder,
                        run_cell_conformance,
                        standard_conformance_suite)
from repro.hdl import Simulator
from repro.rtl import AtmPortModuleRtl, CellReceiver, CellSender


class TestVectorBuilder:
    def test_fluent_composition(self):
        vectors = (VectorBuilder(vpi=1, vci=100)
                   .cell("plain")
                   .corrupt_hec("hec", bit=3)
                   .idle("idle")
                   .unknown_connection("unknown", 9, 9)
                   .build())
        assert [v.expectation for v in vectors] \
            == ["accept", "drop", "idle", "drop"]
        assert all(len(v.octets) == 53 for v in vectors)

    def test_corrupt_hec_really_breaks_the_hec(self):
        (vector,) = VectorBuilder().corrupt_hec("h", bit=0).build()
        from repro.atm import CellFormatError
        with pytest.raises(CellFormatError):
            AtmCell.from_octets(list(vector.octets))

    def test_cell_field_overrides(self):
        (vector,) = VectorBuilder().cell("x", clp=1, pt=2,
                                         gfc=5).build()
        cell = AtmCell.from_octets(list(vector.octets))
        assert (cell.clp, cell.pt, cell.gfc) == (1, 2, 5)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            VectorBuilder().corrupt_hec("h", bit=8)
        with pytest.raises(ValueError):
            VectorBuilder().corrupt_header("h", octet=4, bit=0)

    def test_vector_validation(self):
        with pytest.raises(ValueError):
            ConformanceVector("short", (0,) * 52, "accept")
        with pytest.raises(ValueError):
            ConformanceVector("bad", (0,) * 53, "maybe")


class TestStandardSuite:
    def test_suite_composition(self):
        suite = standard_conformance_suite()
        names = [v.name for v in suite]
        assert len(names) == len(set(names))  # unique names
        expectations = {v.expectation for v in suite}
        assert expectations == {"accept", "drop", "idle"}
        assert sum(1 for v in suite
                   if v.name.startswith("hec/")) == 8
        assert sum(1 for v in suite
                   if v.name.startswith("payload/walking")) == 8

    def test_accept_vectors_are_valid_cells(self):
        for vector in standard_conformance_suite():
            if vector.expectation == "accept":
                cell = AtmCell.from_octets(list(vector.octets))
                assert (cell.vpi, cell.vci) == (1, 100)


class TestConformanceRun:
    def run_against_port_module(self, install=True):
        """Feed each vector through a fresh RTL port module and
        classify the observed behaviour."""
        suite = standard_conformance_suite()

        def apply_cell(octets):
            sim = Simulator()
            clk = sim.signal("clk", init="0")
            sim.add_clock(clk, period=10)
            dut = AtmPortModuleRtl(sim, "pm", clk)
            if install:
                dut.install(1, 100, 2, 200)
            sender = CellSender(sim, "gen", clk, port=dut.rx)
            receiver = CellReceiver(sim, "mon", clk, dut.tx)
            sender.send(list(octets))
            sim.run(until=10 * 150)
            if receiver.cells:
                return "accept"
            if dut.idle_cells:
                return "idle"
            return "drop"

        return suite, run_cell_conformance(suite, apply_cell)

    def test_port_module_passes_the_standard_suite(self):
        suite, report = self.run_against_port_module()
        assert report.ok, report.failures
        assert report.passed == report.total == len(suite)
        assert "PASS" in report.summary()

    def test_unconfigured_dut_fails_accept_vectors(self):
        """Without the connection installed, every 'accept' vector is
        dropped — and the report says exactly which ones."""
        suite, report = self.run_against_port_module(install=False)
        assert not report.ok
        accept_count = sum(1 for v in suite
                           if v.expectation == "accept")
        assert len(report.failures) == accept_count
        assert all(expected == "accept" and observed == "drop"
                   for _name, expected, observed in report.failures)
        assert "FAIL" in report.summary()
