"""Transport edge cases: framing, EOF signatures, batching."""

import multiprocessing
import socket
import struct
import threading

import pytest

from repro.shard.protocol import split_ops
from repro.shard.transport import (PipeTransport, SocketTransport,
                                   TransportClosed, TransportError,
                                   accept_transport, connect_transport,
                                   open_listener)


def _socket_pair():
    listener, address = open_listener()
    result = {}

    def dial():
        result["client"] = connect_transport(address)

    thread = threading.Thread(target=dial)
    thread.start()
    server = accept_transport(listener, timeout=5.0)
    thread.join()
    listener.close()
    return server, result["client"]


def test_socket_roundtrip_counts_frames():
    server, client = _socket_pair()
    try:
        client.send(("ops", (1, [("n", 1e-6)])))
        kind, payload = server.recv()
        assert kind == "ops"
        assert payload == (1, [("n", 1e-6)])
        server.send(("ack", (1, [])))
        assert client.recv() == ("ack", (1, []))
        assert client.stats() == {"frames_sent": 1,
                                  "frames_received": 1}
        assert server.stats() == {"frames_sent": 1,
                                  "frames_received": 1}
    finally:
        server.close()
        client.close()


def test_socket_eof_mid_payload_reports_partial_bytes():
    """A peer dying inside a frame (the crash-mid-window signature)
    must name exactly how much of the frame arrived."""
    listener, address = open_listener()
    raw = socket.create_connection(address)
    server = accept_transport(listener, timeout=5.0)
    listener.close()
    try:
        # claim a 100-byte payload, deliver 10, die
        raw.sendall(struct.pack(">I", 100) + b"x" * 10)
        raw.close()
        with pytest.raises(TransportClosed,
                           match=r"got 10/100 bytes of the payload"):
            server.recv()
    finally:
        server.close()


def test_socket_eof_before_any_frame_is_clean():
    listener, address = open_listener()
    raw = socket.create_connection(address)
    server = accept_transport(listener, timeout=5.0)
    listener.close()
    try:
        raw.close()
        with pytest.raises(TransportClosed,
                           match=r"got 0/4 bytes of the length prefix"):
            server.recv()
    finally:
        server.close()


def test_socket_send_after_peer_close_raises():
    server, client = _socket_pair()
    client.close()
    with pytest.raises(TransportClosed):
        # the first send may land in the kernel buffer; the second
        # must observe the reset either way
        server.send(("ops", (1, [])))
        server.send(("ops", (2, [])))
    server.close()


def test_accept_timeout_raises_transport_error():
    listener, _ = open_listener()
    try:
        with pytest.raises(TransportError, match="no shard connected"):
            accept_transport(listener, timeout=0.05)
    finally:
        listener.close()


def test_pipe_eof_raises_transport_closed():
    parent, child = multiprocessing.Pipe(duplex=True)
    transport = PipeTransport(parent)
    child.close()
    with pytest.raises(TransportClosed, match="pipe"):
        transport.recv()
    transport.close()


def test_pipe_roundtrip_in_process():
    parent, child = multiprocessing.Pipe(duplex=True)
    a, b = PipeTransport(parent), PipeTransport(child)
    a.send(("finish", 1.5e-3))
    assert b.recv() == ("finish", 1.5e-3)
    assert a.frames_sent == 1 and b.frames_received == 1
    a.close()
    b.close()


def test_transport_close_is_idempotent():
    server, client = _socket_pair()
    for _ in range(2):
        server.close()
        client.close()
    assert server.closed and client.closed


def test_split_ops_preserves_order():
    ops = [("n", float(i)) for i in range(10)]
    batches = split_ops(ops, 4)
    assert [len(b) for b in batches] == [4, 4, 2]
    assert [op for batch in batches for op in batch] == ops
    assert split_ops(ops, 0) == [ops]
    assert split_ops([], 4) == []
