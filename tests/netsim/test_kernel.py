"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim import Kernel, SchedulingError


def test_initial_time_is_zero():
    assert Kernel().now == 0.0


def test_events_execute_in_time_order():
    k = Kernel()
    order = []
    k.schedule(3.0, lambda: order.append(3))
    k.schedule(1.0, lambda: order.append(1))
    k.schedule(2.0, lambda: order.append(2))
    k.run()
    assert order == [1, 2, 3]


def test_now_tracks_event_time():
    k = Kernel()
    seen = []
    k.schedule(5.5, lambda: seen.append(k.now))
    k.run()
    assert seen == [5.5]
    assert k.now == 5.5


def test_simultaneous_events_fifo_order():
    k = Kernel()
    order = []
    for i in range(10):
        k.schedule(1.0, lambda i=i: order.append(i))
    k.run()
    assert order == list(range(10))


def test_priority_breaks_simultaneous_ties():
    k = Kernel()
    order = []
    k.schedule(1.0, lambda: order.append("low"), priority=5)
    k.schedule(1.0, lambda: order.append("high"), priority=-5)
    k.run()
    assert order == ["high", "low"]


def test_schedule_in_past_raises():
    k = Kernel()
    k.schedule(2.0, lambda: None)
    k.run()
    with pytest.raises(SchedulingError):
        k.schedule(1.0, lambda: None)


def test_schedule_at_current_time_allowed():
    k = Kernel()
    hits = []
    def at_two():
        hits.append("a")
        k.schedule(k.now, lambda: hits.append("b"))
    k.schedule(2.0, at_two)
    k.run()
    assert hits == ["a", "b"]


def test_negative_delay_raises():
    k = Kernel()
    with pytest.raises(SchedulingError):
        k.schedule_after(-0.1, lambda: None)


def test_run_until_stops_before_later_events():
    k = Kernel()
    hits = []
    k.schedule(1.0, lambda: hits.append(1))
    k.schedule(10.0, lambda: hits.append(10))
    k.run(until=5.0)
    assert hits == [1]
    assert k.now == 5.0  # horizon reached even without an event there
    k.run()
    assert hits == [1, 10]


def test_run_until_advances_clock_with_empty_list():
    k = Kernel()
    k.run(until=7.0)
    assert k.now == 7.0


def test_max_events_limit():
    k = Kernel()
    hits = []
    for i in range(5):
        k.schedule(float(i + 1), lambda i=i: hits.append(i))
    k.run(max_events=2)
    assert hits == [0, 1]


def test_cancelled_event_not_executed():
    k = Kernel()
    hits = []
    ev = k.schedule(1.0, lambda: hits.append("x"))
    ev.cancel()
    k.run()
    assert hits == []
    assert k.pending_events == 0


def test_stop_from_within_event():
    k = Kernel()
    hits = []
    k.schedule(1.0, lambda: (hits.append(1), k.stop()))
    k.schedule(2.0, lambda: hits.append(2))
    k.run()
    assert hits == [1]
    k.run()
    assert hits == [1, 2]


def test_executed_events_counter():
    k = Kernel()
    for i in range(7):
        k.schedule(float(i), lambda: None)
    k.run()
    assert k.executed_events == 7


def test_next_event_time():
    k = Kernel()
    assert k.next_event_time() is None
    k.schedule(4.0, lambda: None)
    k.schedule(2.0, lambda: None)
    assert k.next_event_time() == 2.0


def test_time_listener_called_on_advance():
    k = Kernel()
    seen = []
    k.time_listeners.append(seen.append)
    k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None)
    k.run()
    assert seen == [1.0, 2.0]


def test_events_scheduled_during_execution():
    k = Kernel()
    hits = []
    def cascade(depth):
        hits.append(k.now)
        if depth > 0:
            k.schedule_after(1.0, lambda: cascade(depth - 1))
    k.schedule(0.0, lambda: cascade(3))
    k.run()
    assert hits == [0.0, 1.0, 2.0, 3.0]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_property_execution_order_is_sorted(times):
    """Whatever the schedule order, execution times are non-decreasing."""
    k = Kernel()
    executed = []
    for t in times:
        k.schedule(t, lambda t=t: executed.append(k.now))
    k.run()
    assert executed == sorted(executed)
    assert len(executed) == len(times)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.integers(min_value=-3, max_value=3)),
                min_size=1, max_size=40))
def test_property_priority_then_fifo(entries):
    """Simultaneous events execute in (priority, insertion) order."""
    k = Kernel()
    executed = []
    for idx, (t, prio) in enumerate(entries):
        k.schedule(t, lambda rec=(t, prio, idx): executed.append(rec),
                   priority=prio)
    k.run()
    assert executed == sorted(executed, key=lambda r: (r[0], r[1], r[2]))
