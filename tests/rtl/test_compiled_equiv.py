"""Event-vs-compiled backend equivalence (the tentpole correctness bar).

Every RTL component carrying a compile hook must be **trace-identical**
on the compiled (levelized) backend and on the event kernel: the same
stimulus driven through both backends must produce equivalent VCD
waveforms (``compare_waveforms`` — final value per signal per
timestamp), the same received cells and the same device counters, on
both the event-driven clock and the :class:`CycleEngine`.  A seeded
randomized replay hammers the four-port switch fabric the same way.
"""

import random

import pytest

from repro.atm import AtmCell
from repro.hdl import (CycleEngine, Simulator, UnsupportedFeature,
                       VcdData, VcdWriter, compare_waveforms)
from repro.rtl import (AtmPortModuleRtl, AtmSwitchRtl, CellReceiver,
                       CellSender, CellStreamPort, UpcPolicerRtl)

PERIOD = 10
CLOCKINGS = ("event", "cycle")
BACKENDS = ("event", "compiled")


def make_sim(clocking, backend):
    sim = Simulator()
    sim.rtl_backend = backend
    clk = sim.signal("clk", init="0")
    if clocking == "event":
        sim.add_clock(clk, period=PERIOD)
    else:
        CycleEngine(sim, clk, period=PERIOD)
    return sim, clk


def make_cell(vpi, vci, seed):
    return AtmCell.with_payload(vpi, vci,
                                [(seed + k) % 256
                                 for k in range(4)]).to_octets()


def assert_same_waveform(paths):
    diffs = compare_waveforms(VcdData.parse(paths["event"]),
                              VcdData.parse(paths["compiled"]))
    assert diffs == [], f"compiled backend diverged: {diffs[:5]}"


# ---------------------------------------------------------------------------
# Per-component equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_port_module_equivalent(tmp_path, clocking):
    paths, results = {}, {}
    for backend in BACKENDS:
        sim, clk = make_sim(clocking, backend)
        pm = AtmPortModuleRtl(sim, "pm", clk)
        pm.install(1, 100, 2, 200)
        sender = CellSender(sim, "gen", clk, port=pm.rx)
        receiver = CellReceiver(sim, "mon", clk, pm.tx)
        for i in range(3):
            sender.send(make_cell(1, 100, i))
        sender.send(make_cell(9, 999, 50))       # unknown -> dropped
        path = tmp_path / f"pm_{clocking}_{backend}.vcd"
        with VcdWriter(sim, path,
                       [clk] + pm.rx.signals() + pm.tx.signals()):
            sim.run(until=5 * 53 * PERIOD + 400)
        assert pm.backends["seq"] == backend
        paths[backend] = path
        results[backend] = (receiver.cells, pm.cells_received,
                            pm.cells_translated,
                            pm.unknown_connections)
    assert results["compiled"] == results["event"]
    assert len(results["event"][0]) == 3
    assert_same_waveform(paths)


@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_policer_equivalent(tmp_path, clocking):
    paths, results = {}, {}
    for backend in BACKENDS:
        sim, clk = make_sim(clocking, backend)
        upc = UpcPolicerRtl(sim, "upc", clk, action="drop")
        # tight contract: back-to-back cells on (1, 100) violate it
        upc.install_contract(1, 100, increment_clocks=150)
        sender = CellSender(sim, "gen", clk, port=upc.rx)
        receiver = CellReceiver(sim, "mon", clk, upc.tx)
        for i in range(4):
            sender.send(make_cell(1, 100, i))
        path = tmp_path / f"upc_{clocking}_{backend}.vcd"
        with VcdWriter(sim, path,
                       [clk] + upc.rx.signals() + upc.tx.signals()):
            sim.run(until=6 * 53 * PERIOD + 400)
        assert upc.backends["seq"] == backend
        paths[backend] = path
        results[backend] = (receiver.cells, upc.cells_conforming,
                            upc.cells_non_conforming)
    assert results["compiled"] == results["event"]
    assert results["event"][2] > 0               # contract did bite
    assert_same_waveform(paths)


def build_switch(sim, clk, num_ports=4):
    """The E1 fabric shape: N ports, cross-wired connections."""
    switch = AtmSwitchRtl(sim, "sw", clk, num_ports=num_ports,
                          lookup_latency=3, queue_depth=8)
    for port in range(num_ports):
        out_port = (port + 1) % num_ports
        switch.install_connection(port, 1, 100 + port, out_port,
                                  2, 200 + port)
    senders = [CellSender(sim, f"gen{p}", clk, port=switch.rx_ports[p])
               for p in range(num_ports)]
    receivers = [CellReceiver(sim, f"mon{p}", clk, switch.tx_ports[p])
                 for p in range(num_ports)]
    return switch, senders, receivers


@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_switch_fabric_equivalent(tmp_path, clocking):
    paths, results = {}, {}
    for backend in BACKENDS:
        sim, clk = make_sim(clocking, backend)
        switch, senders, receivers = build_switch(sim, clk)
        for port, sender in enumerate(senders):
            for i in range(2):
                sender.send(make_cell(1, 100 + port, port * 10 + i))
        senders[0].send(make_cell(7, 777, 99))   # unknown -> dropped
        signals = [clk]
        for bundle in switch.rx_ports + switch.tx_ports:
            signals += bundle.signals()
        path = tmp_path / f"sw_{clocking}_{backend}.vcd"
        with VcdWriter(sim, path, signals):
            sim.run(until=8 * 53 * PERIOD + 800)
        assert switch.backends["seq"] == backend
        assert switch.gcu.backends["seq"] == backend
        paths[backend] = path
        results[backend] = (
            [r.cells for r in receivers], switch.cells_received,
            switch.cells_switched, switch.cells_dropped_unknown,
            switch.gcu.lookups_served, switch.gcu.lookup_misses)
    assert results["compiled"] == results["event"]
    assert results["event"][2] == 8              # 2 cells x 4 ports
    assert results["event"][3] == 1
    assert_same_waveform(paths)


# ---------------------------------------------------------------------------
# Fallback behaviour
# ---------------------------------------------------------------------------

def test_unsupported_component_falls_back_and_matches(monkeypatch):
    """auto + a compile hook that refuses -> event kernel hosts the
    process, the run is unchanged, the fallback is counted."""
    def refuse(self, ctx):
        raise UnsupportedFeature("forced for the fallback test")

    monkeypatch.setattr(AtmPortModuleRtl, "_compile_seq", refuse)
    cells_out = {}
    for backend in ("event", "auto"):
        sim, clk = make_sim("cycle", backend)
        pm = AtmPortModuleRtl(sim, "pm", clk)
        pm.install(1, 100, 2, 200)
        sender = CellSender(sim, "gen", clk, port=pm.rx)
        receiver = CellReceiver(sim, "mon", clk, pm.tx)
        for i in range(2):
            sender.send(make_cell(1, 100, i))
        sim.run(until=4 * 53 * PERIOD)
        assert pm.backends["seq"] == "event"
        expected = 1 if backend == "auto" else 0
        assert sim.compiled_fallbacks == expected
        cells_out[backend] = receiver.cells
    assert cells_out["auto"] == cells_out["event"]
    assert len(cells_out["event"]) == 2


def test_contended_output_falls_back():
    """An output another compiled process already writes makes the
    second component uncompilable -> auto falls back and counts it."""
    sim, clk = make_sim("cycle", "auto")
    first = AtmPortModuleRtl(sim, "a", clk)
    second = AtmPortModuleRtl(sim, "b", clk, tx=first.tx)
    assert first.backends["seq"] == "compiled"
    assert second.backends["seq"] == "event"     # tx already written
    assert sim.compiled_fallbacks == 1


def test_testbench_driven_output_falls_back():
    """A test-bench driver on a would-be output blocks compilation."""
    sim, clk = make_sim("cycle", "auto")
    bundle = CellStreamPort(sim, "ext")
    bundle.valid.drive("0")                      # anonymous driver
    sim.run(until=PERIOD)
    contended = AtmPortModuleRtl(sim, "b", clk, tx=bundle)
    assert contended.backends["seq"] == "event"
    assert sim.compiled_fallbacks == 1


# ---------------------------------------------------------------------------
# Seeded randomized replay
# ---------------------------------------------------------------------------

def random_traffic(seed, num_ports, count):
    rng = random.Random(seed)
    traffic = [[] for _ in range(num_ports)]
    for i in range(count):
        port = rng.randrange(num_ports)
        if rng.random() < 0.15:                  # unknown connection
            cell = make_cell(7, 700 + rng.randrange(8), i)
        else:
            cell = make_cell(1, 100 + port, i)
        traffic[port].append(cell)
    return traffic


@pytest.mark.parametrize("seed", [2026, 808])
def test_randomized_switch_replay_equivalent(tmp_path, seed):
    num_ports = 4
    traffic = random_traffic(seed, num_ports, 24)
    paths, results = {}, {}
    for backend in BACKENDS:
        sim, clk = make_sim("cycle", backend)
        switch, senders, receivers = build_switch(sim, clk, num_ports)
        for port, cells in enumerate(traffic):
            for cell in cells:
                senders[port].send(cell)
        signals = [clk]
        for bundle in switch.rx_ports + switch.tx_ports:
            signals += bundle.signals()
        path = tmp_path / f"rand{seed}_{backend}.vcd"
        with VcdWriter(sim, path, signals):
            sim.run(until=30 * 53 * PERIOD + 2000)
        paths[backend] = path
        results[backend] = (
            [r.cells for r in receivers], switch.cells_received,
            switch.cells_switched, switch.cells_dropped_unknown,
            switch.cells_dropped_overflow, switch.hec_errors,
            switch.backlog())
    assert results["compiled"] == results["event"]
    received, total, switched = (results["event"][0],
                                 results["event"][1],
                                 results["event"][2])
    assert total == 24
    assert sum(len(cells) for cells in received) == switched
    assert_same_waveform(paths)


def test_compiled_run_is_byte_deterministic(tmp_path):
    """Two identical compiled runs dump byte-identical VCDs."""
    dumps = []
    for tag in ("one", "two"):
        sim, clk = make_sim("cycle", "compiled")
        switch, senders, _receivers = build_switch(sim, clk)
        for port, cells in enumerate(random_traffic(42, 4, 12)):
            for cell in cells:
                senders[port].send(cell)
        signals = [clk]
        for bundle in switch.rx_ports + switch.tx_ports:
            signals += bundle.signals()
        path = tmp_path / f"det_{tag}.vcd"
        with VcdWriter(sim, path, signals):
            sim.run(until=16 * 53 * PERIOD + 1200)
        dumps.append(path.read_bytes())
    assert dumps[0] == dumps[1]
