"""OAM F5 fault management: loopback cells.

Operation-and-maintenance flows are the in-band self-test machinery of
an ATM network: an F5 loopback cell travels the same VPI/VCI as user
traffic (distinguished by its payload type), gets looped back at the
far end, and its return within a timeout proves connectivity — the
network-level sibling of the board's functional chip verification.

Cell format (ITU-T I.610):

* PT = 0b100 (segment F5) or 0b101 (end-to-end F5);
* payload octet 0: OAM type (high nibble, 0b0001 = fault management)
  and function type (low nibble, 0b1000 = loopback);
* octet 1: loopback indication (1 = please loop me back);
* octets 2..5: correlation tag;
* octets 6..21: loopback location ID;
* the last two octets carry a CRC-10 over the payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..netsim.node import Module
from ..netsim.packet import Packet
from .cell import AtmCell, PAYLOAD_OCTETS

__all__ = ["crc10", "check_crc10", "make_loopback_cell",
           "parse_oam_cell", "OamInfo", "OamError",
           "LoopbackResponder", "LoopbackInitiator",
           "PT_SEGMENT_F5", "PT_END_TO_END_F5",
           "OAM_FAULT_MANAGEMENT", "FUNC_LOOPBACK"]

PT_SEGMENT_F5 = 0b100
PT_END_TO_END_F5 = 0b101
OAM_FAULT_MANAGEMENT = 0b0001
FUNC_LOOPBACK = 0b1000

_CRC10_POLY = 0x633


class OamError(ValueError):
    """Raised on malformed OAM cells (bad CRC-10, wrong type)."""


def crc10(data: Sequence[int]) -> int:
    """CRC-10 (generator x^10+x^9+x^5+x^4+x+1) over *data* bytes."""
    crc = 0
    for byte in data:
        if not 0 <= byte <= 0xFF:
            raise OamError(f"byte {byte} out of range")
        crc ^= byte << 2
        for _ in range(8):
            if crc & 0x200:
                crc = ((crc << 1) ^ _CRC10_POLY) & 0x3FF
            else:
                crc = (crc << 1) & 0x3FF
    return crc


def check_crc10(payload: Sequence[int]) -> bool:
    """True when the 48-octet OAM payload carries a consistent CRC-10
    in its last 10 bits."""
    if len(payload) != PAYLOAD_OCTETS:
        raise OamError(f"OAM payload must be {PAYLOAD_OCTETS} octets")
    body = list(payload[:-2])
    received = ((payload[-2] & 0x03) << 8) | payload[-1]
    return crc10(body) == received


@dataclass(frozen=True)
class OamInfo:
    """Decoded contents of an OAM loopback cell."""

    vpi: int
    vci: int
    end_to_end: bool
    loopback_indication: int
    correlation_tag: int
    location_id: Tuple[int, ...]


def make_loopback_cell(vpi: int, vci: int, correlation_tag: int,
                       end_to_end: bool = True,
                       loopback_indication: int = 1,
                       location_id: Sequence[int] = ()) -> AtmCell:
    """Build an F5 loopback cell ready to transmit."""
    if not 0 <= correlation_tag <= 0xFFFFFFFF:
        raise OamError(f"correlation tag {correlation_tag} out of range")
    location = list(location_id)[:16]
    location += [0x6A] * (16 - len(location))  # 0x6A = I.610 filler
    payload = [0] * PAYLOAD_OCTETS
    payload[0] = (OAM_FAULT_MANAGEMENT << 4) | FUNC_LOOPBACK
    payload[1] = 1 if loopback_indication else 0
    payload[2] = (correlation_tag >> 24) & 0xFF
    payload[3] = (correlation_tag >> 16) & 0xFF
    payload[4] = (correlation_tag >> 8) & 0xFF
    payload[5] = correlation_tag & 0xFF
    payload[6:22] = location
    payload[22:46] = [0x6A] * 24
    crc = crc10(payload[:-2])
    payload[-2] = (crc >> 8) & 0x03
    payload[-1] = crc & 0xFF
    return AtmCell(vpi=vpi, vci=vci,
                   pt=PT_END_TO_END_F5 if end_to_end else PT_SEGMENT_F5,
                   payload=tuple(payload))


def is_oam_cell(cell: AtmCell) -> bool:
    """True for F5 OAM payload types."""
    return cell.pt in (PT_SEGMENT_F5, PT_END_TO_END_F5)


def parse_oam_cell(cell: AtmCell) -> OamInfo:
    """Decode and validate an F5 loopback cell.

    Raises:
        OamError: not an OAM cell, not a loopback function, or CRC-10
            failure.
    """
    if not is_oam_cell(cell):
        raise OamError(f"PT {cell.pt:#05b} is not an F5 OAM flow")
    payload = list(cell.payload)
    if not check_crc10(payload):
        raise OamError("OAM CRC-10 mismatch")
    oam_type = (payload[0] >> 4) & 0xF
    function = payload[0] & 0xF
    if oam_type != OAM_FAULT_MANAGEMENT or function != FUNC_LOOPBACK:
        raise OamError(
            f"not a loopback cell (type {oam_type}, func {function})")
    tag = ((payload[2] << 24) | (payload[3] << 16) | (payload[4] << 8)
           | payload[5])
    return OamInfo(vpi=cell.vpi, vci=cell.vci,
                   end_to_end=cell.pt == PT_END_TO_END_F5,
                   loopback_indication=payload[1],
                   correlation_tag=tag,
                   location_id=tuple(payload[6:22]))


class LoopbackResponder(Module):
    """Loops OAM loopback cells back; forwards everything else.

    Input stream 0 carries the connection's cell flow; user cells pass
    through to output stream 0, loopback cells with indication=1 are
    returned on output stream 1 (the reverse direction) with the
    indication cleared and the CRC-10 recomputed.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.looped = 0
        self.forwarded = 0
        self.bad_oam = 0

    def receive(self, packet: Packet, stream: int) -> None:
        self.packets_in += 1
        cell = AtmCell.from_packet(packet)
        if not is_oam_cell(cell):
            self.forwarded += 1
            self.send(packet, stream=0)
            return
        try:
            info = parse_oam_cell(cell)
        except OamError:
            self.bad_oam += 1
            return
        if not info.loopback_indication:
            # already-looped cell passing a responder: forward onwards
            self.forwarded += 1
            self.send(packet, stream=0)
            return
        response = make_loopback_cell(
            cell.vpi, cell.vci, info.correlation_tag,
            end_to_end=info.end_to_end, loopback_indication=0,
            location_id=info.location_id)
        self.looped += 1
        self.send(response.to_packet(), stream=1)


class LoopbackInitiator(Module):
    """Originates loopback cells and supervises their return.

    :meth:`probe` transmits a loopback cell on output stream 0 and
    arms a timeout; returned cells arrive on input stream 0.  Results
    accumulate in :attr:`round_trips` (tag -> RTT seconds) and
    :attr:`timeouts`.
    """

    def __init__(self, name: str, vpi: int, vci: int,
                 timeout: float = 1e-3,
                 on_result: Optional[Callable[[int, Optional[float]],
                                              None]] = None) -> None:
        super().__init__(name)
        if timeout <= 0:
            raise OamError(f"non-positive loopback timeout {timeout}")
        self.vpi = vpi
        self.vci = vci
        self.timeout = timeout
        self.on_result = on_result
        self._next_tag = 1
        self._outstanding = {}
        self.round_trips = {}
        self.timeouts = 0

    def probe(self) -> int:
        """Send one loopback cell; returns its correlation tag."""
        tag = self._next_tag
        self._next_tag += 1
        kernel = self._kernel()
        cell = make_loopback_cell(self.vpi, self.vci, tag)
        self._outstanding[tag] = kernel.now
        self.send(cell.to_packet(kernel.now), stream=0)
        kernel.schedule_after(self.timeout,
                              lambda: self._expire(tag))
        return tag

    def receive(self, packet: Packet, stream: int) -> None:
        self.packets_in += 1
        try:
            info = parse_oam_cell(AtmCell.from_packet(packet))
        except OamError:
            return
        sent_at = self._outstanding.pop(info.correlation_tag, None)
        if sent_at is None or info.loopback_indication:
            return
        rtt = self._kernel().now - sent_at
        self.round_trips[info.correlation_tag] = rtt
        if self.on_result is not None:
            self.on_result(info.correlation_tag, rtt)

    def _expire(self, tag: int) -> None:
        if tag in self._outstanding:
            del self._outstanding[tag]
            self.timeouts += 1
            if self.on_result is not None:
                self.on_result(tag, None)
