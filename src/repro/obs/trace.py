"""Structured trace stream of co-simulation decisions.

A :class:`TraceWriter` emits one JSON object per line — the schema the
perf and scaling PRs consume (see DESIGN.md §"Observability"):

* every record carries ``ev`` (the event kind) plus event-specific
  fields;
* co-simulation records stamp both time domains where meaningful:
  ``t`` is the network-simulator (originator) time in seconds,
  ``hdl_s`` the HDL simulator's local time in seconds.

Event kinds emitted by the instrumented stack:

==============  =========================================================
``post``        data message entered a synchroniser input queue
``null``        null (time-only) message announced the originator time
``window``      the conservative protocol granted a processing window
``release``     a queued message was released to its handler
``drain``       end-of-run drain started
``tick_pulse``  a tariff tick pulse was scheduled on the DUT input
``cell_out``    a cell was captured on the DUT ``tx_port``
``finish``      entity settle loop completed (``residual`` > 0 means
                the DUT was still busy when the settle budget ran out)
==============  =========================================================

The writer targets a file path, an open file-like object, or — when
constructed without a sink — an in-memory list (:attr:`records`),
which is what the tests use.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

__all__ = ["TraceWriter"]


class TraceWriter:
    """JSON-lines trace sink.

    Args:
        sink: a path (``str`` / :class:`~pathlib.Path`), an open
            text-mode file-like object, or ``None`` to collect records
            in memory (:attr:`records`).
        defaults: fields stamped onto *every* record (event fields
            win on collision).  Shard workers use this to stamp their
            shard id on each span so multi-process traces stay
            attributable after merging.

    Crash safety: path sinks are opened *line-buffered*, so every
    record reaches the file as soon as it is emitted — a run that
    raises mid-simulation loses nothing already traced.  Use the
    writer as a context manager (or call :meth:`close`) to guarantee
    the OS-level close even on exception.
    """

    def __init__(self,
                 sink: Optional[Union[str, Path, IO[str]]] = None,
                 defaults: Optional[Dict[str, object]] = None) -> None:
        self.emitted = 0
        self.defaults: Dict[str, object] = dict(defaults or {})
        self.records: List[Dict[str, object]] = []
        self._own_file = False
        self._closed = False
        self._file: Optional[IO[str]] = None
        self.path: Optional[Path] = None
        if sink is None:
            return
        if isinstance(sink, (str, Path)):
            self.path = Path(sink)
            # Line buffering: each emit() lands on disk immediately, so
            # the trace survives a run that dies mid-simulation.
            self._file = self.path.open("w", buffering=1)
            self._own_file = True
        else:
            self._file = sink

    @property
    def closed(self) -> bool:
        """True after :meth:`close`; emitting then raises."""
        return self._closed

    def emit(self, ev: str, **fields) -> None:
        """Append one trace record of kind *ev*.

        Raises:
            ValueError: the writer was already closed — a silent drop
                here would corrupt the record count consumers rely on.
        """
        if self._closed:
            raise ValueError(
                f"TraceWriter is closed; cannot emit {ev!r}")
        record: Dict[str, object] = {"ev": ev}
        if self.defaults:
            record.update(self.defaults)
        record.update(fields)
        self.emitted += 1
        if self._file is not None:
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            self.records.append(record)

    def close(self) -> None:
        """Flush and close an owned file sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._file is not None:
            self._file.flush()
            if self._own_file:
                self._file.close()
                self._file = None

    def __enter__(self) -> "TraceWriter":
        """Enter ``with TraceWriter(...) as trace`` — returns self."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the sink on scope exit, exception or not."""
        self.close()
