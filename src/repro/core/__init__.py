"""CASTANET — the co-verification core.

Time-stamped message queues, the conservative timing-window
synchronisation protocol, abstraction interfaces (struct ↔ bit-level
conversion), the co-simulation entity, the board interface model,
reference-vs-DUT stream comparison and the top-level
:class:`CoVerificationEnvironment` façade.
"""

from .board_interface import (BoardInterfaceModel, IN_ATMDATA, IN_CELLSYNC,
                              IN_TICK, IN_VALID, OUT_REC_VALID,
                              OUT_REC_WORD, cell_stream_pin_config)
from .comparison import Mismatch, StreamComparator, VerificationReport
from .contract import DUT_LEVELS, DutContract, resolve_level
from .cosim import (CELL_MSG, CosimulationEntity,
                    ResidualBacklogWarning, TICK_MSG)
from .environment import CoVerificationEnvironment, TapModule
from .ifgen import (GeneratedBundle, GeneratedReceiver, GeneratedSender,
                    InterfaceDescription, atm_cell_interface,
                    charging_record_interface)
from .mapping import CellMapper, FieldSpec, MappingError, StructMapper
from .messages import (CausalityError, MessageQueue, MessageQueueSet,
                       TimestampedMessage)
from .regression import (CaseResult, RegressionError, RegressionReport,
                         RegressionSuite)
from .sync import (ConservativeSynchronizer, LockstepSynchronizer,
                   SyncStatistics)
from .timebase import CELL_BITS, CELL_OCTETS, STM1_LINE_RATE, TimeBase
from .vectors import (ConformanceReport, ConformanceVector,
                      VectorBuilder, run_cell_conformance,
                      standard_conformance_suite)

__all__ = [
    "BoardInterfaceModel", "IN_ATMDATA", "IN_CELLSYNC", "IN_TICK",
    "IN_VALID", "OUT_REC_VALID", "OUT_REC_WORD",
    "cell_stream_pin_config",
    "Mismatch", "StreamComparator", "VerificationReport",
    "DUT_LEVELS", "DutContract", "resolve_level",
    "CELL_MSG", "CosimulationEntity", "ResidualBacklogWarning",
    "TICK_MSG",
    "CoVerificationEnvironment", "TapModule",
    "GeneratedBundle", "GeneratedReceiver", "GeneratedSender",
    "InterfaceDescription", "atm_cell_interface",
    "charging_record_interface",
    "CellMapper", "FieldSpec", "MappingError", "StructMapper",
    "CausalityError", "MessageQueue", "MessageQueueSet",
    "TimestampedMessage",
    "CaseResult", "RegressionError", "RegressionReport",
    "RegressionSuite",
    "ConservativeSynchronizer", "LockstepSynchronizer", "SyncStatistics",
    "CELL_BITS", "CELL_OCTETS", "STM1_LINE_RATE", "TimeBase",
    "ConformanceReport", "ConformanceVector", "VectorBuilder",
    "run_cell_conformance", "standard_conformance_suite",
]
