"""Transport edge cases: framing, EOF signatures, batching, shm."""

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time

import pytest

from repro.shard.codec import CodecError, OpBatch
from repro.shard.protocol import split_ops
from repro.shard.transport import (PipeTransport, ShmRingTransport,
                                   SocketTransport, TransportClosed,
                                   TransportError, accept_transport,
                                   connect_transport, open_listener,
                                   shm_ring_pair)


def _socket_pair():
    listener, address = open_listener()
    result = {}

    def dial():
        result["client"] = connect_transport(address)

    thread = threading.Thread(target=dial)
    thread.start()
    server = accept_transport(listener, timeout=5.0)
    thread.join()
    listener.close()
    return server, result["client"]


def _null_batch(time_s):
    batch = OpBatch()
    batch.add_null(time_s)
    return batch


def test_socket_roundtrip_counts_frames_and_bytes():
    server, client = _socket_pair()
    try:
        client.send(("ops", (1, _null_batch(1e-6))))
        kind, payload = server.recv()
        assert kind == "ops"
        seq, packed = payload
        assert seq == 1
        assert packed.ops() == [("n", 1e-6)]
        server.send(("ack", (1, [])))
        kind, (seq, outputs) = client.recv()
        assert (kind, seq) == ("ack", 1)
        assert outputs.outputs() == []
        # ops frame: 8 header + 16 sub-header + 8 time + 1 code = 33;
        # empty ack frame: 8 header + 16 sub-header = 24
        assert client.stats() == {"frames_sent": 1,
                                  "frames_received": 1,
                                  "bytes_sent": 33,
                                  "bytes_received": 24}
        assert server.stats() == {"frames_sent": 1,
                                  "frames_received": 1,
                                  "bytes_sent": 24,
                                  "bytes_received": 33}
    finally:
        server.close()
        client.close()


def test_socket_eof_mid_payload_reports_partial_bytes():
    """A peer dying inside a frame (the crash-mid-window signature)
    must name exactly how much of the frame arrived."""
    listener, address = open_listener()
    raw = socket.create_connection(address)
    server = accept_transport(listener, timeout=5.0)
    listener.close()
    try:
        # a valid header claiming a 100-octet payload, 10 octets, EOF
        raw.sendall(struct.pack("<HBBI", 0xAC53, 1, 4, 100)
                    + b"x" * 10)
        raw.close()
        with pytest.raises(TransportClosed,
                           match=r"got 10/100 bytes of the payload"):
            server.recv()
    finally:
        server.close()


def test_socket_eof_before_any_frame_is_clean():
    listener, address = open_listener()
    raw = socket.create_connection(address)
    server = accept_transport(listener, timeout=5.0)
    listener.close()
    try:
        raw.close()
        with pytest.raises(TransportClosed,
                           match=r"got 0/8 bytes of the frame header"):
            server.recv()
    finally:
        server.close()


def test_socket_rejects_pickled_frame():
    """The security property of the binary wire: a crafted pickle is
    refused with CodecError before any byte is interpreted — it is
    never unpickled, so it cannot execute anything."""
    class Boom:
        def __reduce__(self):
            return (os.system, ("echo pwned > /tmp/shard-pwned",))

    listener, address = open_listener()
    raw = socket.create_connection(address)
    server = accept_transport(listener, timeout=5.0)
    listener.close()
    try:
        raw.sendall(pickle.dumps(("ops", (1, Boom()))))
        with pytest.raises(CodecError, match="refusing pickled frame"):
            server.recv()
        assert not os.path.exists("/tmp/shard-pwned")
    finally:
        raw.close()
        server.close()


def test_socket_rejects_garbage_magic():
    listener, address = open_listener()
    raw = socket.create_connection(address)
    server = accept_transport(listener, timeout=5.0)
    listener.close()
    try:
        raw.sendall(b"GET / HT")
        with pytest.raises(CodecError, match="bad frame magic"):
            server.recv()
    finally:
        raw.close()
        server.close()


def test_socket_send_after_peer_close_raises():
    server, client = _socket_pair()
    client.close()
    with pytest.raises(TransportClosed):
        # the first send may land in the kernel buffer; the second
        # must observe the reset either way
        server.send(("ops", (1, OpBatch())))
        server.send(("ops", (2, OpBatch())))
    server.close()


def test_accept_timeout_raises_transport_error():
    listener, _ = open_listener()
    try:
        with pytest.raises(TransportError, match="no shard connected"):
            accept_transport(listener, timeout=0.05)
    finally:
        listener.close()


def test_pipe_eof_raises_transport_closed():
    parent, child = multiprocessing.Pipe(duplex=True)
    transport = PipeTransport(parent)
    child.close()
    with pytest.raises(TransportClosed, match="pipe"):
        transport.recv()
    transport.close()


def test_pipe_roundtrip_in_process():
    parent, child = multiprocessing.Pipe(duplex=True)
    a, b = PipeTransport(parent), PipeTransport(child)
    a.send(("finish", 1.5e-3))
    assert b.recv() == ("finish", 1.5e-3)
    assert a.frames_sent == 1 and b.frames_received == 1
    assert a.bytes_sent == b.bytes_received > 0
    a.close()
    b.close()


def test_pipe_frame_larger_than_recv_buffer_grows():
    """A frame bigger than the preallocated receive buffer (the
    BufferTooShort path — not an OSError!) must arrive whole and grow
    the buffer for next time."""
    parent, child = multiprocessing.Pipe(duplex=True)
    a, b = PipeTransport(parent), PipeTransport(child)
    batch = OpBatch()
    for i in range(3000):  # ~160 KB of cell blob, > the 64 KB buffer
        batch.add_cell(i * 1e-6, i % 4, bytes(range(53)))

    def pump():
        a.send(("ops", (9, batch)))

    thread = threading.Thread(target=pump)
    thread.start()
    kind, (seq, packed) = b.recv()
    thread.join()
    assert (kind, seq) == ("ops", 9)
    assert packed.n_cells == 3000
    assert bytes(packed.blob[:53]) == bytes(range(53))
    assert len(b._buf) >= b.bytes_received
    a.close()
    b.close()


def test_pipe_rejects_pickled_bytes():
    """Raw pickle bytes injected into the pipe are refused, not
    unpickled."""
    parent, child = multiprocessing.Pipe(duplex=True)
    transport = PipeTransport(parent)
    child.send_bytes(pickle.dumps(("close", None)))
    with pytest.raises(CodecError, match="refusing pickled frame"):
        transport.recv()
    child.close()
    transport.close()


def test_transport_close_is_idempotent():
    server, client = _socket_pair()
    for _ in range(2):
        server.close()
        client.close()
    assert server.closed and client.closed


def test_split_ops_preserves_order():
    ops = [("n", float(i)) for i in range(10)]
    batches = split_ops(ops, 4)
    assert [len(b) for b in batches] == [4, 4, 2]
    assert [op for batch in batches for op in batch] == ops
    assert split_ops(ops, 0) == [ops]
    assert split_ops([], 4) == []


# ----------------------------------------------------------------------
# Shared-memory ring transport (mirrors the socket edge cases)
# ----------------------------------------------------------------------
def _shm_pair():
    coordinator, descriptor = shm_ring_pair()
    worker = ShmRingTransport.attach(descriptor)
    # in-process peers: both ends are this (live) process
    coordinator.peer_alive = None
    worker.peer_alive = None
    return coordinator, worker


def test_shm_roundtrip_counts_frames_and_bytes():
    coordinator, worker = _shm_pair()
    try:
        coordinator.send(("ops", (7, _null_batch(2e-6))))
        kind, (seq, packed) = worker.recv()
        assert (kind, seq) == ("ops", 7)
        assert packed.ops() == [("n", 2e-6)]
        worker.send(("ack", (7, [(0, 2e-6, bytes(53))])))
        kind, (seq, outputs) = coordinator.recv()
        assert (kind, seq) == ("ack", 7)
        assert outputs.outputs() == [(0, 2e-6, bytes(53))]
        assert coordinator.stats()["frames_sent"] == 1
        assert coordinator.stats()["bytes_sent"] == 33
        assert worker.stats()["bytes_received"] == 33
        assert coordinator.stats()["bytes_received"] == \
            worker.stats()["bytes_sent"] > 53
    finally:
        coordinator.close()
        worker.close()


def test_shm_poll_sees_pending_frame():
    coordinator, worker = _shm_pair()
    try:
        assert not worker.poll(0.0)
        coordinator.send(("snapshot", None))
        assert worker.poll(1.0)
        assert worker.recv() == ("snapshot", None)
        assert not worker.poll(0.0)
    finally:
        coordinator.close()
        worker.close()


def test_shm_frame_larger_than_ring_streams_through():
    """A frame bigger than the ring capacity trickles through as the
    reader drains — no deadlock, no truncation."""
    coordinator, descriptor = shm_ring_pair(capacity=256)
    worker = ShmRingTransport.attach(descriptor)
    coordinator.peer_alive = None
    worker.peer_alive = None
    batch = OpBatch()
    for i in range(64):
        batch.add_cell(i * 1e-6, i % 4, bytes(range(53)))
    received = {}

    def drain():
        received["frame"] = worker.recv()

    thread = threading.Thread(target=drain)
    thread.start()
    try:
        coordinator.send(("ops", (3, batch)))
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        kind, (seq, packed) = received["frame"]
        assert (kind, seq) == ("ops", 3)
        assert packed.ops() == batch.packed().ops()
    finally:
        coordinator.close()
        worker.close()


def test_shm_close_wakes_blocked_reader_as_eof():
    coordinator, worker = _shm_pair()
    outcome = {}

    def blocked_recv():
        try:
            worker.recv()
        except TransportClosed as exc:
            outcome["error"] = str(exc)

    thread = threading.Thread(target=blocked_recv)
    thread.start()
    time.sleep(0.05)
    coordinator.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert "got 0/8 bytes of the frame header" in outcome["error"]
    worker.close()


def test_shm_peer_death_mid_window_raises():
    """A peer that dies *without* closing (crash mid-window) must
    surface via the liveness probe, not hang the blocked reader."""
    coordinator, worker = _shm_pair()
    coordinator.peer_alive = lambda: False  # worker "already died"
    with pytest.raises(TransportClosed,
                       match="peer process died.*frame header"):
        coordinator.recv()
    coordinator.close()
    worker.close()


def test_shm_rejects_pickled_bytes():
    """Pickle bytes written straight into the ring are refused."""
    coordinator, worker = _shm_pair()
    try:
        coordinator._out.write(pickle.dumps(("close", None)), None)
        with pytest.raises(CodecError, match="refusing pickled frame"):
            worker.recv()
    finally:
        coordinator.close()
        worker.close()


def _shm_echo_child(descriptor):
    transport = ShmRingTransport.attach(descriptor)
    frame = transport.recv()
    transport.send(frame)
    transport.close()


def test_shm_descriptor_crosses_a_process_boundary():
    """The descriptor must survive being shipped as a Process argument
    and attach to the same rings from the child."""
    ctx = multiprocessing.get_context()
    coordinator, descriptor = shm_ring_pair(ctx)
    process = ctx.Process(target=_shm_echo_child, args=(descriptor,),
                          daemon=True)
    process.start()
    coordinator.peer_alive = process.is_alive
    try:
        coordinator.send(("finish", 5e-3))
        assert coordinator.recv() == ("finish", 5e-3)
    finally:
        process.join(timeout=10.0)
        coordinator.close()
