"""The shard worker process: replay ops, piggy-back outputs, report.

:func:`shard_worker_main` is the process entry point (pipe mode; the
socket mode wraps it after dialling the coordinator).  It builds one
:class:`~repro.shard.group.ShardGroup` from the shipped config and
then serves frames until ``FRAME_CLOSE`` or transport EOF:

* ``FRAME_OPS (seq, packed)`` → decode-free replay
  (:meth:`~repro.shard.group.ShardGroup.apply_packed` slices cells
  straight out of the received blob), answer ``FRAME_ACK (seq,
  new_outputs)`` — the ack piggy-backs every output cell the replay
  produced, so one exchange per timing window suffices in the common
  case (the SCE-MI transaction-pipe discipline).
* ``FRAME_FINISH t`` → drain/settle, answer ``FRAME_RESULT report``.
* ``FRAME_SNAPSHOT`` → answer ``FRAME_RESULT`` with a live report,
  without finishing.
* ``FRAME_TELEMETRY`` → answer ``FRAME_TELEMETRY`` with the group's
  observability payload (instruments, provenance spans, coverage
  counters) — valid mid-run and after the finish alike.
* any replay exception → ``FRAME_ERROR`` carrying the *full* remote
  traceback (the PR 7 sweep policy applied to shards); the loop keeps
  serving so the coordinator chooses whether to retry or tear down.

Test hooks (config ``inject``): ``{"kind": "error", "at_op": N}``
raises mid-replay once N ops have been applied; ``"kind": "exit"``
hard-kills the process with ``os._exit`` — the crash-mid-window case
the transport edge-case tests exercise.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from ..obs.trace import TraceWriter
from . import protocol
from .group import ShardGroup
from .transport import (PipeTransport, ShmRingTransport, Transport,
                        TransportClosed, connect_transport)

__all__ = ["shard_worker_main", "shard_worker_socket_main",
           "shard_worker_shm_main", "build_group"]


def build_group(config: Dict[str, Any]) -> ShardGroup:
    """Construct the worker's :class:`ShardGroup` from the shipped
    shard config (``id``/``level``/``num_ports``/``accounting``/
    ``clocking``/``observe``/``trace_file``)."""
    trace: Optional[TraceWriter] = None
    trace_file = config.get("trace_file")
    shard_id = config.get("id", "shard0")
    if trace_file:
        # Stamp the shard id on every record so merged multi-process
        # traces stay attributable per shard.
        trace = TraceWriter(trace_file, defaults={"shard": shard_id})
    return ShardGroup(
        shard_id=shard_id,
        level=config.get("level", "auto"),
        num_ports=int(config.get("num_ports", 4)),
        accounting=bool(config.get("accounting", True)),
        clocking=config.get("clocking", "cycle"),
        observe=bool(config.get("observe", False)),
        trace=trace)


def _check_injection(config: Dict[str, Any], group: ShardGroup,
                     batch: int) -> None:
    """Honour the test-only failure-injection hook before a replay
    batch (mirrors the sweep scenario's ``_apply_injection``)."""
    inject = config.get("inject")
    if not inject:
        return
    at_op = int(inject.get("at_op", 0))
    if group.ops_applied + batch <= at_op:
        return
    kind = inject.get("kind")
    if kind == "error":
        raise RuntimeError(
            f"injected shard error in {group.shard_id!r} at op "
            f"{at_op}")
    if kind == "exit":
        # Hard process death mid-window — no frame, no traceback; the
        # coordinator sees the transport EOF.
        os._exit(23)


def _warm_replay(config: Dict[str, Any]) -> None:
    """Pre-fault the replay working set before the worker reports
    ready.

    A freshly forked child pays copy-on-write page faults the first
    time it touches the interpreter heap it inherited — measured at
    ~1.5-2x on the first replay, which used to land inside the
    coordinator's timed region.  Replaying a few throwaway ops on a
    scratch group walks the cell-parse/replay/report code paths once,
    so the faults are taken during process startup (setup, like
    spawning itself) instead of during the measured exchange.  The
    scratch group is discarded; the real group starts clean, so
    byte-identity is untouched.
    """
    from .codec import OpBatch
    scratch = ShardGroup(
        "warmup", level=config.get("level", "auto"),
        num_ports=int(config.get("num_ports", 4)),
        accounting=bool(config.get("accounting", True)),
        clocking=config.get("clocking", "cycle"))
    batch = OpBatch()
    cell = bytes(53)
    for i in range(32):
        batch.add_cell(i * 1e-6, i % scratch.num_ports, cell)
        batch.add_null(i * 1e-6 + 5e-7)
    scratch.apply_packed(batch.packed())
    scratch.new_outputs_packed()
    scratch.result()
    scratch.close()


def _serve(transport: Transport, config: Dict[str, Any]) -> None:
    """The frame loop shared by all worker flavours.

    Builds (and warm-faults) the shard group first, *then* announces
    readiness with ``FRAME_HELLO`` — the coordinator's
    :meth:`~repro.shard.topology.ShardedTopology.start` waits for the
    hello, so group construction and first-touch costs stay out of
    the timed driving region (exactly like the local reference mode,
    whose groups are built before the clock starts).
    """
    _warm_replay(config)
    group = build_group(config)
    transport.send((protocol.FRAME_HELLO, config.get("id", "shard0")))
    try:
        while True:
            try:
                kind, payload = transport.recv()
            except TransportClosed:
                return
            try:
                reply: Optional[Tuple[str, Any]] = None
                if kind == protocol.FRAME_OPS:
                    seq, packed = payload
                    _check_injection(config, group, len(packed))
                    group.apply_packed(packed)
                    reply = (protocol.FRAME_ACK,
                             (seq, group.new_outputs_packed()))
                elif kind == protocol.FRAME_FINISH:
                    group.finish(payload)
                    result = group.result()
                    result["residual_outputs"] = group.new_outputs()
                    reply = (protocol.FRAME_RESULT, result)
                elif kind == protocol.FRAME_SNAPSHOT:
                    reply = (protocol.FRAME_RESULT, group.result())
                elif kind == protocol.FRAME_TELEMETRY:
                    # Observability rides the same wire as the data
                    # (SCE-MI's discipline): ship the registry
                    # snapshot, span stream and coverage counters
                    # through the tag codec — nothing pickled.
                    reply = (protocol.FRAME_TELEMETRY,
                             group.telemetry())
                elif kind == protocol.FRAME_CLOSE:
                    return
                else:
                    raise ValueError(
                        f"unknown frame kind {kind!r} from "
                        "coordinator")
            except SystemExit:
                raise
            except BaseException as exc:  # noqa: BLE001 - ship it whole
                transport.send((protocol.FRAME_ERROR,
                                protocol.error_info(exc)))
                continue
            if reply is not None:
                transport.send(reply)
    finally:
        group.close()
        transport.close()


def shard_worker_main(conn, config: Dict[str, Any]) -> None:
    """Process target for pipe-coupled shards (*conn* is the child end
    of a :func:`multiprocessing.Pipe`)."""
    _serve(PipeTransport(conn), config)


def shard_worker_socket_main(address: Tuple[str, int],
                             config: Dict[str, Any]) -> None:
    """Process target for socket-coupled shards: dial the coordinator
    at *address*, then serve the shared frame loop (whose hello both
    identifies this shard — accept order is not connect order — and
    reports it ready)."""
    _serve(connect_transport(address), config)


def shard_worker_shm_main(descriptor: Dict[str, Any],
                          config: Dict[str, Any]) -> None:
    """Process target for shared-memory-coupled shards (*descriptor*
    comes from :func:`repro.shard.transport.shm_ring_pair`); the
    attach wires the default coordinator-death watchdog."""
    _serve(ShmRingTransport.attach(descriptor), config)
