"""Sharded-topology scaling benchmark — the multi-process gate.

Runs the same seeded behavioural switch+accounting workload three ways
and writes ``BENCH_shard.json`` at the repo root:

* **local** — one shard driven through the in-process reference
  (:class:`repro.shard.client.LocalShardHandle`): the no-transport
  baseline every sharded figure is read against;
* **one_shard** — the identical op stream shipped to a single worker
  process over a pipe (pipelined up to ``max_inflight`` frames): what
  the coordinator/transport layer costs;
* **two_shard** — two independent behavioural shards, each in its own
  worker process: the multi-switch configuration the topology layer
  exists for.

The headline figure is ``scaling``: the two-shard aggregate throughput
(simulated DUT clock cycles per wall second, summed over both shards)
divided by the one-shard figure.  Two shards execute twice the clocks,
so perfect overlap reads 2.0 and a fully serialised exchange reads 1.0.

**The scaling bar is host-aware.**  Aggregate scaling needs real
parallel hardware: the coordinator and both workers are CPU-bound
Python processes, so on fewer than 3 usable cores they time-slice one
after another and the ratio is physically pinned at ~1.0 no matter how
good the protocol is.  The payload therefore records ``cpus`` and
``parallel_capable`` (cpus >= 3), and the regression guard
(``check_regression.py``) enforces ``REPRO_SHARD_SCALING_MIN``
(default 1.5) only on parallel-capable hosts; elsewhere it enforces
``REPRO_SHARD_SCALING_MIN_SERIAL`` (default 0.8) — a floor that still
catches protocol serialisation bugs (a per-window barrier in the
driver measured 0.77x on one core before it was removed).

Each configuration reports the best of ``REPEATS`` runs so scheduler
noise does not masquerade as a regression.  The wall figure is
``run_topology``'s own timed region: driving + finishing, with
stimulus generation and process spawning excluded as setup.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_shard.py

``REPRO_BENCH_SCALE`` scales the cell workload exactly as it does for
the other benchmarks (CI smoke-runs at 0.25).
"""

import os
import sys
from pathlib import Path

if __package__ in (None, ""):  # script mode
    sys.path.insert(0, str(Path(__file__).parent))
    from common import save_bench_json, scale, scaled
else:
    from .common import save_bench_json, scale, scaled

from repro.shard import TRANSPORTS, ShardSpec, TopologySpec, run_topology

#: best-of-N repeats per configuration (the host this repo is grown on
#: is a 1-vCPU VM whose wall clock drifts with neighbour load; best-of
#: damps that noise out of the committed figures)
REPEATS = 5

#: timing-window width (slots), frame batching and pipeline depth —
#: wide windows and large frames amortise the per-frame exchange down
#: to a handful of big zero-copy frames per run; shallow pipelining is
#: enough once frames are this coarse
WINDOW_SLOTS = 4096
MAX_BATCH = 8192
MAX_INFLIGHT = 2

#: a coordinator plus two workers need at least this many cores for
#: aggregate scaling to be physically possible
PARALLEL_CPUS = 3


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def scaling_floor(parallel_capable: bool) -> float:
    """The scaling bar the regression guard enforces on this host."""
    if parallel_capable:
        return float(os.environ.get("REPRO_SHARD_SCALING_MIN", "1.5"))
    return float(os.environ.get("REPRO_SHARD_SCALING_MIN_SERIAL",
                                "0.8"))


def _spec(num_shards: int, cells: int) -> TopologySpec:
    return TopologySpec(
        shards=[ShardSpec(f"shard{i}", level="behav")
                for i in range(num_shards)],
        cells=cells, seed=0, window_slots=WINDOW_SLOTS,
        max_batch=MAX_BATCH, max_inflight=MAX_INFLIGHT)


def _measure(num_shards: int, cells: int, mode: str):
    """Best-of-``REPEATS`` topology run; returns the throughput
    summary of the fastest run."""
    spec = _spec(num_shards, cells)
    best = None
    for _ in range(REPEATS):
        report = run_topology(spec, mode=mode)
        if best is None or (report["cycles_per_s"]
                            > best["cycles_per_s"]):
            best = report
    frames = best["totals"]["frames"]
    wire_bytes = best["totals"]["bytes"]
    moved = (best["totals"]["cells_in"]
             + best["totals"]["output_cells"])
    return {
        "shards": num_shards,
        "mode": mode,
        "cycles_per_s": best["cycles_per_s"],
        "wall_s": best["wall_s"],
        "clocks": best["totals"]["clocks"],
        "cells_in": best["totals"]["cells_in"],
        "output_cells": best["totals"]["output_cells"],
        "frames": frames,
        "wire_bytes": wire_bytes,
        "bytes_per_frame": wire_bytes / frames if frames else 0.0,
        "bytes_per_cell": wire_bytes / moved if moved else 0.0,
        "digest": best["digest"],
    }


def _digest_matrix(cells: int) -> dict:
    """Byte-identity across every transport: one sharded run per
    transport must reproduce the local reference digest exactly
    (digests are timing-independent, so one run each suffices)."""
    digests = {"local": run_topology(_spec(1, cells),
                                     mode="local")["digest"]}
    for transport in TRANSPORTS:
        spec = _spec(1, cells)
        spec.transport = transport
        digests[transport] = run_topology(spec,
                                          mode="sharded")["digest"]
    return digests


def bench_shard(cells=None):
    """Sharded-topology throughput and 2-vs-1 shard scaling."""
    cells = scaled(6144) if cells is None else cells
    cpus = _usable_cpus()
    parallel_capable = cpus >= PARALLEL_CPUS

    local = _measure(1, cells, "local")
    one = _measure(1, cells, "sharded")
    two = _measure(2, cells, "sharded")
    digests = _digest_matrix(cells)

    return {
        "cells": cells,
        "window_slots": WINDOW_SLOTS,
        "max_batch": MAX_BATCH,
        "max_inflight": MAX_INFLIGHT,
        "cpus": cpus,
        "parallel_capable": parallel_capable,
        "scaling_floor": scaling_floor(parallel_capable),
        "local": local,
        "one_shard": one,
        "two_shard": two,
        "scaling": two["cycles_per_s"] / one["cycles_per_s"],
        "transport_overhead":
            1.0 - one["cycles_per_s"] / local["cycles_per_s"],
        "digests": digests,
        "digests_match": len(set(digests.values())) == 1,
    }


def main():
    payload = bench_shard()
    floor = payload["scaling_floor"]
    kind = ("parallel" if payload["parallel_capable"]
            else f"serial, {payload['cpus']} cpu(s)")
    print(f"sharded-topology scaling benchmark "
          f"({kind} host, floor {floor:g}x, "
          f"REPRO_BENCH_SCALE={scale():g})")
    for key in ("local", "one_shard", "two_shard"):
        stats = payload[key]
        wire = (f", {stats['bytes_per_frame']:,.0f} B/frame, "
                f"{stats['bytes_per_cell']:.0f} B/cell"
                if stats["frames"] else "")
        print(f"  {key:<9}: {stats['cycles_per_s']:>12,.0f} cyc/s "
              f"({stats['wall_s'] * 1e3:7.1f} ms, "
              f"{stats['clocks']:,} clocks{wire})")
    print(f"  scaling  : {payload['scaling']:.2f}x aggregate "
          f"(transport overhead "
          f"{payload['transport_overhead']:+.1%} vs local)")
    matched = "identical" if payload["digests_match"] else "DIVERGED"
    print(f"  digests  : {matched} across "
          f"{'/'.join(payload['digests'])}")
    path = save_bench_json("shard", payload)
    print(f"  -> {path}")

    if not payload["digests_match"]:
        print("FAIL: sharded output digests diverge from the local "
              "reference across transports")
        return 1
    if payload["scaling"] < floor:
        print(f"FAIL: 2-shard scaling {payload['scaling']:.2f}x "
              f"below the {floor:g}x floor for this host class")
        return 1
    print(f"2-shard scaling {payload['scaling']:.2f}x meets the "
          f"{floor:g}x floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
