"""Octet-serial cell stream interface (the bit-level side of Figure 4).

The paper's abstraction interface maps an OPNET packet to "an 8-bit
wide VHDL port signal ... it takes 53 clock cycles within the hardware
simulator to read the cell.  Additionally, the interface model
generates control signals such as a cell synchronization signal".

These components implement that signal-level convention, shared by the
RTL DUTs and by CASTANET's co-simulation entity:

* ``atmdata[7:0]`` — one cell octet per clock,
* ``cellsync``    — '1' together with octet 0 of each cell,
* ``valid``       — '1' while an octet is present.

Playback modes (the 1:400-granularity hot path): driving one cell
costs the generator path 53 process resumptions and ~159 ``drive()``
calls.  The *bulk* path instead compiles each cell image once into a
cached transition template and plays it back through a single
:meth:`repro.hdl.Simulator.schedule_waveform` call — one dict lookup
plus one bulk insert per cell, trace-identical to the generator path
(the equivalence suite in ``tests/rtl/test_bulk_equiv.py`` compares
the VCDs).  ``playback="auto"`` (default) selects bulk when the clock
geometry is registered (``sim.add_clock`` or an attached
:class:`~repro.hdl.cycle.CycleEngine`) and falls back to the generator
otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..hdl.logic import vector_to_int
from ..hdl.processes import RisingEdge
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .component import Component

__all__ = ["CellStreamPort", "CellSender", "CellReceiver", "CELL_OCTETS",
           "enable_shared_templates", "shared_template_stats",
           "clear_shared_templates"]

CELL_OCTETS = 53

# ----------------------------------------------------------------------
# Shared compiled-cell-template cache (cross-sender, cross-run)
# ----------------------------------------------------------------------
# A compiled template binds Signal objects, so per-instance caches die
# with their sender.  The shared cache stores templates *symbolically*
# (signal index instead of Signal: 0=atmdata, 1=cellsync, 2=valid) so a
# long-lived process — the `repro serve` job-service workers — carries
# the compilation work of one job into the next and across senders.
# Off by default: single-run processes gain nothing from the extra
# publish step.
_SHARED_ENABLED = False
_SHARED_LIMIT = 4096
_SHARED_TEMPLATES: dict = {}
_SHARED_STATS = {"hits": 0, "misses": 0}


def enable_shared_templates(enabled: bool = True) -> None:
    """Turn the process-wide shared template cache on (or off).

    Intended for long-lived processes serving many runs (the
    ``repro serve`` workers enable it at startup); the per-sender
    cache keeps working either way.
    """
    global _SHARED_ENABLED
    _SHARED_ENABLED = enabled


def clear_shared_templates() -> None:
    """Drop every shared template and reset the hit/miss counters."""
    _SHARED_TEMPLATES.clear()
    _SHARED_STATS["hits"] = 0
    _SHARED_STATS["misses"] = 0


def shared_template_stats() -> dict:
    """Counters of the shared cache: ``enabled``, ``entries``,
    ``hits`` (a sender bound an already-published template) and
    ``misses`` (a template had to be compiled and was published)."""
    return {"enabled": _SHARED_ENABLED,
            "entries": len(_SHARED_TEMPLATES),
            "hits": _SHARED_STATS["hits"],
            "misses": _SHARED_STATS["misses"]}


class CellStreamPort:
    """The signal bundle of one octet-serial cell interface."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.atmdata = sim.signal(f"{name}.atmdata", width=8, init=0)
        self.cellsync = sim.signal(f"{name}.cellsync", init="0")
        self.valid = sim.signal(f"{name}.valid", init="0")

    def signals(self) -> List[Signal]:
        """All signals of the bundle (for VCD dumps)."""
        return [self.atmdata, self.cellsync, self.valid]


class CellSender(Component):
    """Clocks queued cells (53-octet sequences) onto a stream port.

    Cells are queued with :meth:`send`; the sender drives one octet per
    rising clock edge, inserting idle (valid='0') slots when the queue
    is empty.  ``gap_octets`` adds that many idle clocks between
    consecutive cells (inter-cell spacing).

    ``playback`` selects the drive machinery:

    * ``"bulk"`` — each cell is compiled into a cached waveform
      template (memoised by octet tuple and edge spacing, including
      the ``cellsync``/``valid`` control schedule and the idle
      trailer) and injected with one ``schedule_waveform`` call; no
      process resumption per clock.  Requires a registered clock
      geometry on *clk*.
    * ``"generator"`` — the behavioural generator process (the seed
      path, kept as the equivalence reference).  When idle it parks on
      an internal queue-refill event instead of polling every edge.
    * ``"auto"`` (default) — resolve at initialisation: bulk when
      ``sim.clock_spec(clk)`` is known, generator otherwise.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 port: Optional[CellStreamPort] = None,
                 gap_octets: int = 0,
                 playback: str = "auto") -> None:
        super().__init__(sim, name)
        self.port = port if port is not None else CellStreamPort(sim, name)
        self.gap_octets = gap_octets
        self.clk = clk
        self._queue: Deque[Sequence[int]] = deque()
        self.cells_sent = 0
        #: optional observer invoked after a cell's last octet has been
        #: driven (used for per-cell ingress-latency accounting)
        self.on_cell_sent: Optional[Callable[[], None]] = None
        #: optional profiling hook — a zero-arg callable returning a
        #: context manager, wrapped around every bulk cell compilation
        #: (see :func:`repro.obs.profile.attach_profiling`)
        self.profile: Optional[Callable[[], object]] = None
        if playback not in ("auto", "bulk", "generator"):
            raise ValueError(
                f"playback must be 'auto', 'bulk' or 'generator', "
                f"got {playback!r}")
        #: resolved playback mode ("bulk"/"generator"; None while an
        #: "auto" sender waits for its first process run to decide)
        self.playback: Optional[str] = None
        # -- bulk-path state ------------------------------------------
        self._bulk_driver = object()
        #: (octets, gap0) -> precompiled transition template
        self._template_cache: dict = {}
        self.template_hits = 0
        self.template_misses = 0
        #: first edge tick free for the next cell's octet 0
        self._next_free_edge: Optional[int] = None
        #: cells scheduled as waveforms whose trailer has not played
        self._inflight = 0
        # -- generator-path state -------------------------------------
        #: queue-refill parking signal (created lazily: only the
        #: generator path needs it, and only once it first idles)
        self._refill: Optional[Signal] = None
        self._refill_level = False

        if playback == "bulk":
            if sim.clock_spec(clk) is None:
                raise ValueError(
                    f"CellSender {name!r}: playback='bulk' needs a "
                    "registered clock on its clk signal (sim.add_clock "
                    "or an attached CycleEngine)")
            self.playback = "bulk"
            self._drive_idle_bulk()
        else:
            self._force_generator = (playback == "generator")
            sim.add_generator(f"{name}.sender", self._run())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send(self, octets: Sequence[int]) -> None:
        """Queue one cell (a 53-octet sequence) for transmission."""
        if len(octets) != CELL_OCTETS:
            raise ValueError(
                f"a cell is {CELL_OCTETS} octets, got {len(octets)}")
        if self.playback == "bulk":
            self._schedule_cell(tuple(octets))
            return
        self._queue.append(list(octets))
        if self._refill is not None:
            # Wake the parked generator (it re-syncs to the next edge).
            self._refill_level = not self._refill_level
            self.sim._schedule_update(
                self._refill, self._bulk_driver,
                "1" if self._refill_level else "0", 0)

    @property
    def backlog(self) -> int:
        """Cells queued but not yet fully transmitted (bulk-scheduled
        cells count until their idle trailer has played)."""
        return len(self._queue) + self._inflight

    # ------------------------------------------------------------------
    # Generator path (and "auto" resolution)
    # ------------------------------------------------------------------
    def _run(self):
        sim = self.sim
        clk = self.clk
        if not self._force_generator:
            spec = sim.clock_spec(clk)
            if spec is not None:
                # Auto-resolution at the first process run (during
                # sim.initialize()): the clock geometry is known, so
                # promote to bulk playback and flush the queue.  The
                # first queued cell reproduces the generator's
                # initialisation timing (octet 0 applied at the
                # current time, before the first edge).
                self.playback = "bulk"
                if not self._queue:
                    # Establish the idle levels exactly like the
                    # generator's first run would.
                    self._drive_idle_bulk()
                first = True
                while self._queue:
                    self._schedule_cell(tuple(self._queue.popleft()),
                                        at_now=first)
                    first = False
                return
        self.playback = "generator"
        edge = RisingEdge(clk)
        queue = self._queue
        atmdata = self.port.atmdata
        cellsync = self.port.cellsync
        valid = self.port.valid
        while True:
            if not queue:
                self._drive_idle()
                # Park until send() refills the queue, then re-sync to
                # the clock: the next octet is driven after the first
                # edge following the refill, exactly like the seed's
                # per-edge polling loop — without one process
                # resumption per idle clock.
                if self._refill is None:
                    self._refill = self.sim.signal(
                        f"{self.name}.refill", init="0")
                yield self._refill
                yield edge
                continue
            octets = queue.popleft()
            # Drive one octet after each rising edge; the consumer
            # samples it on the following edge.
            for index, octet in enumerate(octets):
                atmdata.drive(octet)
                cellsync.drive("1" if index == 0 else "0")
                valid.drive("1")
                yield edge
            self.cells_sent += 1
            if self.on_cell_sent is not None:
                self.on_cell_sent()
            self._drive_idle()
            for _ in range(self.gap_octets):
                yield edge

    def _drive_idle(self) -> None:
        self.port.valid.drive("0")
        self.port.cellsync.drive("0")

    def _drive_idle_bulk(self) -> None:
        """Idle levels via the bulk driver identity (the bulk path must
        never mix drivers on the port — two drivers would resolve to
        'X')."""
        sim = self.sim
        sim._schedule_update(self.port.valid, self._bulk_driver, "0", 0)
        sim._schedule_update(self.port.cellsync, self._bulk_driver,
                             "0", 0)

    # ------------------------------------------------------------------
    # Bulk path
    # ------------------------------------------------------------------
    def _schedule_cell(self, octets: Tuple[int, ...],
                       at_now: bool = False) -> None:
        profile = self.profile
        if profile is not None:
            with profile():
                self._schedule_cell_impl(octets, at_now)
            return
        self._schedule_cell_impl(octets, at_now)

    def _schedule_cell_impl(self, octets: Tuple[int, ...],
                            at_now: bool) -> None:
        sim = self.sim
        period, first_rise = sim.clock_spec(self.clk)
        now = sim.now
        free = self._next_free_edge
        if free is not None and free > now:
            # Chained behind the previous cell (back-to-back or gap).
            base, gap0 = free, period
        elif at_now or (not sim._initialized and now < first_rise):
            # Initialisation-time send: the generator drives octet 0
            # during its first run, before the first edge.
            base = now
            gap0 = sim.next_rising_edge(self.clk, after=now) - now
        else:
            # Idle pick-up: octet 0 lands after the next rising edge
            # strictly beyond the current time (where the parked
            # generator would resume).
            base = sim.next_rising_edge(self.clk, after=now)
            gap0 = period
        key = (octets, gap0)
        template = self._template_cache.get(key)
        if template is None:
            self.template_misses += 1
            template = self._adopt_shared(octets, gap0, period)
            if template is None:
                template = self._compile_template(octets, gap0, period)
                self._publish_shared(octets, gap0, period, template)
            self._template_cache[key] = template
        else:
            self.template_hits += 1
        transitions, trailer_offset = template
        self._inflight += 1
        sim.schedule_waveform(
            transitions, start=base, driver=self._bulk_driver,
            callbacks=((trailer_offset, self._cell_done),),
            normalized=True)
        self._next_free_edge = (base + trailer_offset
                                + self.gap_octets * period)

    def _compile_template(self, octets: Tuple[int, ...], gap0: int,
                          period: int) -> Tuple[List[tuple], int]:
        """Compile one cell image into a transition list.

        Offsets: octet 0 at 0, octet *k* at ``gap0 + (k-1)*period``,
        idle trailer one edge after the last octet.  Transitions that
        cannot change the signal (an octet equal to its predecessor,
        ``cellsync``/``valid`` levels already established) are
        omitted — same resolved waveform, fewer kernel events.  Octet
        0 and the trailer are always emitted: the bus state before and
        after the cell is not part of the template key.
        """
        atmdata = self.port.atmdata
        cellsync = self.port.cellsync
        valid = self.port.valid
        norm = atmdata.normalize
        transitions: List[tuple] = [
            (0, atmdata, norm(octets[0])),
            (0, cellsync, "1"),
            (0, valid, "1"),
        ]
        previous = octets[0]
        for index in range(1, len(octets)):
            offset = gap0 + (index - 1) * period
            octet = octets[index]
            if octet != previous:
                transitions.append((offset, atmdata, norm(octet)))
                previous = octet
            if index == 1:
                transitions.append((offset, cellsync, "0"))
        trailer_offset = gap0 + (len(octets) - 1) * period
        transitions.append((trailer_offset, valid, "0"))
        return transitions, trailer_offset

    def _adopt_shared(self, octets: Tuple[int, ...], gap0: int,
                      period: int) -> Optional[Tuple[List[tuple], int]]:
        """Bind a shared symbolic template to this sender's signals;
        None when the shared cache is off or has no entry."""
        if not _SHARED_ENABLED:
            return None
        entry = _SHARED_TEMPLATES.get((octets, gap0, period))
        if entry is None:
            _SHARED_STATS["misses"] += 1
            return None
        _SHARED_STATS["hits"] += 1
        symbolic, trailer_offset = entry
        signals = (self.port.atmdata, self.port.cellsync,
                   self.port.valid)
        return ([(offset, signals[index], value)
                 for offset, index, value in symbolic], trailer_offset)

    def _publish_shared(self, octets: Tuple[int, ...], gap0: int,
                        period: int,
                        template: Tuple[List[tuple], int]) -> None:
        """Store a freshly compiled template in signal-index form so
        any sender (in this process) can adopt it later."""
        if not _SHARED_ENABLED or len(_SHARED_TEMPLATES) >= _SHARED_LIMIT:
            return
        transitions, trailer_offset = template
        index_of = {id(self.port.atmdata): 0,
                    id(self.port.cellsync): 1,
                    id(self.port.valid): 2}
        symbolic = [(offset, index_of[id(signal)], value)
                    for offset, signal, value in transitions]
        _SHARED_TEMPLATES[(octets, gap0, period)] = (symbolic,
                                                     trailer_offset)

    def _cell_done(self) -> None:
        """Waveform completion hook: the cell's last octet has been
        driven (the generator path's end-of-cell bookkeeping)."""
        self._inflight -= 1
        self.cells_sent += 1
        if self.on_cell_sent is not None:
            self.on_cell_sent()


class CellReceiver(Component):
    """Collects octets from a stream port back into 53-octet cells.

    Each completed cell is appended to :attr:`cells` and passed to the
    optional ``on_cell`` callback.  Octets arriving without a preceding
    cellsync are counted as :attr:`framing_errors` and discarded.

    While no cell is in progress and ``valid`` is low the receiver
    parks on ``valid``'s rising edge instead of sampling every clock —
    idle gaps cost no process runs (the edge-gated idle loop).

    On the compiled backend the receiver is instead levelized into the
    clock's kernel: one straight-line sample per rising edge, with the
    same per-edge observations as the generator (idle edges where the
    generator parks are exactly the edges whose sample is a no-op).
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 port: CellStreamPort,
                 on_cell: Optional[Callable[[List[int]], None]] = None,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        self.port = port
        self.on_cell = on_cell
        self.cells: List[List[int]] = []
        self._partial: Optional[List[int]] = None
        self.framing_errors = 0
        # hot-loop bindings (one sample per active clock edge)
        self._valid = port.valid
        self._cellsync = port.cellsync
        self._atmdata = port.atmdata
        # The event path is a generator (with edge-gated idle parking),
        # not a clocked callback, so the backend dispatch is inlined
        # here instead of going through Component.clocked().
        if self._register_compiled(clk, "receiver", self._compile_seq,
                                   "seq"):
            self.backends["receiver"] = "compiled"
        else:
            self.backends["receiver"] = "event"
            sim.add_generator(f"{name}.receiver", self._run(clk))

    @property
    def collecting(self) -> bool:
        """True while a cell is partially received."""
        return self._partial is not None

    def _run(self, clk: Signal):
        valid = self._valid
        clk_edge = RisingEdge(clk)
        valid_edge = RisingEdge(valid)
        while True:
            if self._partial is None and valid.value != "1":
                yield valid_edge
                continue
            yield clk_edge
            self._tick()

    def _tick(self) -> None:
        if self._valid.value != "1":
            return
        octet = vector_to_int(self._atmdata.value)
        if self._cellsync.value == "1":
            if self._partial is not None:
                self.framing_errors += 1
            self._partial = [octet]
        elif self._partial is None:
            self.framing_errors += 1
            return
        else:
            self._partial.append(octet)
        if self._partial is not None and len(self._partial) == CELL_OCTETS:
            cell = self._partial
            self._partial = None
            self.cells.append(cell)
            if self.on_cell is not None:
                self.on_cell(cell)

    def _compile_seq(self, ctx):
        """Compiled twin of the sampling loop (no outputs — the
        receiver only observes)."""
        valid = ctx.read(self._valid)
        cellsync = ctx.read(self._cellsync)
        atmdata = ctx.read(self._atmdata)
        cells = self.cells
        to_int = vector_to_int

        def evaluate():
            if valid.value != "1":
                return
            raw = atmdata.value
            octet = raw if type(raw) is int else to_int(raw)
            partial = self._partial
            if cellsync.value == "1":
                if partial is not None:
                    self.framing_errors += 1
                partial = self._partial = [octet]
            elif partial is None:
                self.framing_errors += 1
                return
            else:
                partial.append(octet)
            if len(partial) == CELL_OCTETS:
                self._partial = None
                cells.append(partial)
                if self.on_cell is not None:
                    self.on_cell(partial)

        return evaluate
