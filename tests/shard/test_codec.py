"""Codec round-trips, seeded fuzzing, and malformed-buffer refusal.

The binary wire codec carries every shard frame; these tests pin three
properties the transports and the byte-identity guarantee build on:

1. **round-trip fidelity** — any op mix, output batch, or control
   value encodes and decodes back to the same data, including the
   empty and maximum-size corners;
2. **precise refusal** — every malformed buffer (truncated anywhere,
   corrupt counts, foreign bytes, pickled frames) raises
   :class:`CodecError` and nothing else;
3. **zero-copy decode** — ops/ack payload columns alias the receive
   buffer rather than copying it.
"""

import pickle
import random
import struct

import pytest

from repro.shard.codec import (CELL_OCTETS, CodecError, HEADER_OCTETS,
                               MAGIC, OpBatch, OutputBatch,
                               PackedOutputs, VERSION, decode_frame,
                               encode_frame, frame_header,
                               parse_header)

# ----------------------------------------------------------------------
# Seeded generators
# ----------------------------------------------------------------------


def _random_ops(rng, n_ops):
    """A random op mix as (OpBatch, expected classic tuples)."""
    batch = OpBatch()
    expected = []
    for i in range(n_ops):
        t = rng.random() * 1e-3
        kind = rng.choice("ccnk")  # cells twice as likely
        if kind == "c":
            port = rng.randrange(16)
            octets = bytes(rng.randrange(256)
                           for _ in range(CELL_OCTETS))
            batch.add_cell(t, port, octets)
            expected.append(("c", t, port, octets))
        elif kind == "n":
            batch.add_null(t)
            expected.append(("n", t))
        else:
            batch.add_tick(t)
            expected.append(("k", t))
    return batch, expected


def _random_outputs(rng, n_cells):
    """A random output batch as (OutputBatch, expected tuples)."""
    batch = OutputBatch()
    expected = []
    for _ in range(n_cells):
        port = rng.randrange(8)
        t = rng.random() * 1e-3
        octets = bytes(rng.randrange(256) for _ in range(CELL_OCTETS))
        batch.add(port, t, octets)
        expected.append((port, t, octets))
    return batch, expected


def _random_value(rng, depth=0):
    """A random control-frame value within the codec's type universe."""
    leaf = depth >= 3 or rng.random() < 0.6
    if leaf:
        return rng.choice([
            None, True, False,
            rng.randrange(-(1 << 80), 1 << 80),
            rng.random() * rng.choice([1.0, 1e300, -1e-300]),
            "".join(chr(rng.randrange(32, 0x2FA0))
                    for _ in range(rng.randrange(8))),
            bytes(rng.randrange(256) for _ in range(rng.randrange(8))),
        ])
    kind = rng.choice("ltd")
    n = rng.randrange(4)
    if kind == "l":
        return [_random_value(rng, depth + 1) for _ in range(n)]
    if kind == "t":
        return tuple(_random_value(rng, depth + 1) for _ in range(n))
    return {str(i): _random_value(rng, depth + 1) for i in range(n)}


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_fuzz_ops_roundtrip(seed):
    rng = random.Random(seed)
    batch, expected = _random_ops(rng, rng.randrange(200))
    kind, (seq, packed) = decode_frame(
        encode_frame(("ops", (seed, batch))))
    assert (kind, seq) == ("ops", seed)
    assert packed.ops() == expected
    assert packed.ops() == batch.packed().ops()


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_ack_roundtrip(seed):
    rng = random.Random(1000 + seed)
    batch, expected = _random_outputs(rng, rng.randrange(100))
    kind, (seq, outputs) = decode_frame(
        encode_frame(("ack", (seed, batch))))
    assert (kind, seq) == ("ack", seed)
    assert isinstance(outputs, PackedOutputs)
    assert outputs.outputs() == expected
    # a decoded view re-encodes to the identical wire image
    assert encode_frame(("ack", (seed, outputs))) == \
        encode_frame(("ack", (seed, batch)))


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_control_value_roundtrip(seed):
    rng = random.Random(2000 + seed)
    value = _random_value(rng)
    assert decode_frame(encode_frame(("result", value))) == \
        ("result", value)


def test_empty_corners_roundtrip():
    assert decode_frame(encode_frame(("ops", (0, OpBatch())))
                        )[1][1].ops() == []
    assert decode_frame(encode_frame(("ack", (0, OutputBatch())))
                        )[1][1].outputs() == []
    assert decode_frame(encode_frame(("ack", (0, []))))[1][1] \
        .outputs() == []
    for value in (None, [], (), {}, "", b"", 0, 0.0, -0.0, False):
        assert decode_frame(encode_frame(("close", value))) == \
            ("close", value)


def test_large_batch_roundtrip():
    batch = OpBatch()
    for i in range(5000):
        batch.add_cell(i * 1e-6, i % 32, bytes([i % 256]) * CELL_OCTETS)
    frame = encode_frame(("ops", (7, batch)))
    _, (seq, packed) = decode_frame(frame)
    assert (seq, packed.n_ops, packed.n_cells) == (7, 5000, 5000)
    assert bytes(packed.blob[-CELL_OCTETS:]) == \
        bytes([4999 % 256]) * CELL_OCTETS


def test_decoded_columns_alias_the_buffer():
    """Zero-copy: the decoded blob is a view into the frame bytes."""
    batch = OpBatch()
    batch.add_cell(1e-6, 3, bytes(range(53)))
    buf = bytearray(encode_frame(("ops", (1, batch))))
    _, (_, packed) = decode_frame(memoryview(buf))
    assert bytes(packed.blob[:53]) == bytes(range(53))
    buf[-1] ^= 0xFF  # mutate the buffer through the back door
    assert packed.blob[52] == 52 ^ 0xFF


def test_split_preserves_columns():
    rng = random.Random(42)
    batch, expected = _random_ops(rng, 97)
    parts = batch.split(10)
    assert [len(p) for p in parts] == [10] * 9 + [7]
    merged = [op for part in parts for op in part.packed().ops()]
    assert merged == expected


# ----------------------------------------------------------------------
# Refusal: every malformed buffer raises CodecError, nothing else
# ----------------------------------------------------------------------
def test_rejects_pickle_and_garbage():
    with pytest.raises(CodecError, match="refusing pickled frame"):
        decode_frame(pickle.dumps(("ops", (1, [("n", 1e-6)]))))
    with pytest.raises(CodecError, match="bad frame magic"):
        decode_frame(b"GET / HTTP/1.1\r\n")
    with pytest.raises(CodecError, match="header truncated"):
        decode_frame(b"\x53")
    with pytest.raises(CodecError, match="unsupported codec version"):
        decode_frame(struct.pack("<HBBI", MAGIC, VERSION + 1, 2, 0))
    with pytest.raises(CodecError, match="unknown frame kind code"):
        decode_frame(struct.pack("<HBBI", MAGIC, VERSION, 200, 0))
    with pytest.raises(CodecError, match="frame length mismatch"):
        decode_frame(frame_header("close", 10) + b"N")


def test_rejects_corrupt_ops_interior():
    batch = OpBatch()
    batch.add_cell(1e-6, 0, bytes(53))
    batch.add_null(2e-6)
    frame = bytearray(encode_frame(("ops", (1, batch))))
    # claim more cells than ops
    struct.pack_into("<I", frame, HEADER_OCTETS + 12, 9)
    with pytest.raises(CodecError, match="cells > .* ops"):
        decode_frame(bytes(frame))
    # an unknown op code in the code column
    frame2 = bytearray(encode_frame(("ops", (1, batch))))
    frame2[-CELL_OCTETS - 1] = ord("z")  # the null's code octet
    with pytest.raises(CodecError, match="unknown op code"):
        decode_frame(bytes(frame2))
    # code column disagreeing with the cell count
    frame3 = bytearray(encode_frame(("ops", (1, batch))))
    frame3[-CELL_OCTETS - 2] = ord("n")  # cell -> null, count stays 1
    with pytest.raises(CodecError, match="code column has"):
        decode_frame(bytes(frame3))


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_truncation_always_codec_error(seed):
    """Any prefix of any valid frame fails with CodecError — never an
    IndexError/struct.error/UnicodeDecodeError leaking through."""
    rng = random.Random(3000 + seed)
    frames = [
        encode_frame(("ops", (5, _random_ops(rng, 20)[0]))),
        encode_frame(("ack", (5, _random_outputs(rng, 10)[0]))),
        encode_frame(("result", _random_value(rng))),
        encode_frame(("hello", "shard0")),
    ]
    for frame in frames:
        cuts = rng.sample(range(len(frame)), min(len(frame), 25))
        for cut in cuts:
            with pytest.raises(CodecError):
                decode_frame(frame[:cut])


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_random_corruption_never_escapes(seed):
    """Random single-octet corruption either still decodes (the flip
    landed in a don't-care position or payload data) or raises exactly
    CodecError."""
    rng = random.Random(4000 + seed)
    batch, _ = _random_ops(rng, 30)
    frame = bytearray(encode_frame(("ops", (9, batch))))
    value_frame = bytearray(encode_frame(("result", _random_value(rng))))
    for target in (frame, value_frame):
        for _ in range(200):
            at = rng.randrange(len(target))
            old = target[at]
            target[at] = rng.randrange(256)
            try:
                decode_frame(bytes(target))
            except CodecError:
                pass
            finally:
                target[at] = old


def test_oversized_cell_and_output_refused():
    batch = OpBatch()
    with pytest.raises(ValueError, match="53"):
        batch.add_cell(0.0, 0, bytes(52))
    out = OutputBatch()
    with pytest.raises(CodecError, match="53"):
        out.add(0, 0.0, bytes(54))
    with pytest.raises(CodecError, match="octets for"):
        bad = OutputBatch()
        bad.add(0, 0.0, bytes(53))
        del bad.blob[-1:]  # columns out of sync
        encode_frame(("ack", (1, bad)))


def test_unencodable_values_refused():
    with pytest.raises(CodecError, match="cannot encode"):
        encode_frame(("result", {"bad": object()}))
    with pytest.raises(CodecError, match="cannot encode"):
        encode_frame(("result", {1, 2}))
    with pytest.raises(CodecError, match="a frame is a"):
        encode_frame("not-a-pair")
    with pytest.raises(CodecError, match="unknown frame kind"):
        encode_frame(("telnet", None))


def test_output_batch_accepts_octet_lists():
    """AtmCell.to_octets() returns a plain int list — the builder must
    take it without an intermediate bytes() copy at the call site."""
    batch = OutputBatch()
    batch.add(2, 1e-6, list(range(53)))
    _, (_, outputs) = decode_frame(encode_frame(("ack", (3, batch))))
    assert outputs.outputs() == [(2, 1e-6, bytes(range(53)))]


def test_parse_header_reports_kind_and_length():
    header = frame_header("ops", 123)
    assert len(header) == HEADER_OCTETS
    kind_code, payload_len = parse_header(memoryview(header))
    assert payload_len == 123
    assert decode_frame(frame_header("close", 1) + b"N") == \
        ("close", None)
    assert kind_code == 2
