"""Test-bench conveniences: stimulus drivers, monitors, scoreboards.

The regression-test-bench building blocks the paper says consume "up
to 50 % of the design time" when written by hand — provided here once
so both hand-written benches and the CASTANET-generated ones share
them.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from .logic import vector_to_int
from .processes import RisingEdge
from .signal import Signal
from .simulator import Simulator

__all__ = ["drive_sequence", "SignalMonitor", "Scoreboard",
           "ScoreboardError", "clocked_driver"]


class ScoreboardError(AssertionError):
    """Raised when observed DUT output diverges from the reference."""


def drive_sequence(sim: Simulator, signal: Signal,
                   waveform: Sequence[Tuple[int, Any]],
                   name: Optional[str] = None) -> None:
    """Drive *signal* through ``waveform`` = [(ticks_to_hold, value)...].

    Each value is applied, then held for its tick count before the
    next one is applied.
    """

    def gen():
        for hold, value in waveform:
            signal.drive(value)
            if hold > 0:
                yield hold

    sim.add_generator(name or f"drive:{signal.name}", gen())


def clocked_driver(sim: Simulator, clock: Signal, signal: Signal,
                   values: Iterable[Any],
                   name: Optional[str] = None) -> None:
    """Apply one value from *values* per rising clock edge."""

    def gen():
        for value in values:
            yield RisingEdge(clock)
            signal.drive(value)

    sim.add_generator(name or f"clocked:{signal.name}", gen())


class SignalMonitor:
    """Samples a signal on every rising edge of a clock.

    Records ``(time, value)`` pairs; with ``as_int=True`` values are
    converted to integers (metavalues recorded as ``None``).
    """

    def __init__(self, sim: Simulator, clock: Signal, signal: Signal,
                 as_int: bool = False,
                 enable: Optional[Signal] = None) -> None:
        self.signal = signal
        self.as_int = as_int
        self.enable = enable
        self.samples: List[Tuple[int, Any]] = []

        def gen():
            while True:
                yield RisingEdge(clock)
                if self.enable is not None and self.enable.value != "1":
                    continue
                self.samples.append((sim.now, self._snapshot()))

        sim.add_generator(f"monitor:{signal.name}", gen())

    def _snapshot(self):
        value = self.signal.value
        if not self.as_int:
            return value
        try:
            if self.signal.width is None:
                return {"0": 0, "1": 1}[value]
            return vector_to_int(value)
        except (KeyError, ValueError):
            return None

    def values(self) -> List[Any]:
        """Just the sampled values, in order."""
        return [value for _t, value in self.samples]


class Scoreboard:
    """Compares an observed stream against expected items in order.

    The "=?" box of the paper's Figure 1: DUT responses stream in via
    :meth:`observe`; reference values via :meth:`expect`.  Mismatches
    raise immediately (``strict=True``) or are recorded.
    """

    def __init__(self, name: str = "scoreboard",
                 strict: bool = True) -> None:
        self.name = name
        self.strict = strict
        self._expected: List[Any] = []
        self.matched = 0
        self.mismatches: List[Tuple[Any, Any]] = []

    def expect(self, item: Any) -> None:
        """Queue the next reference item."""
        self._expected.append(item)

    def expect_all(self, items: Iterable[Any]) -> None:
        """Queue many reference items."""
        self._expected.extend(items)

    def observe(self, item: Any) -> bool:
        """Check the next observed item against the reference queue."""
        if not self._expected:
            failure = (None, item)
            self.mismatches.append(failure)
            if self.strict:
                raise ScoreboardError(
                    f"{self.name}: unexpected item {item!r} "
                    "(nothing expected)")
            return False
        expected = self._expected.pop(0)
        if expected != item:
            self.mismatches.append((expected, item))
            if self.strict:
                raise ScoreboardError(
                    f"{self.name}: expected {expected!r}, got {item!r}")
            return False
        self.matched += 1
        return True

    @property
    def outstanding(self) -> int:
        """Reference items not yet observed."""
        return len(self._expected)

    def check_complete(self) -> None:
        """Assert every expected item arrived and nothing mismatched."""
        if self.mismatches:
            raise ScoreboardError(
                f"{self.name}: {len(self.mismatches)} mismatches, "
                f"first: {self.mismatches[0]}")
        if self._expected:
            raise ScoreboardError(
                f"{self.name}: {len(self._expected)} expected items "
                "never observed")
