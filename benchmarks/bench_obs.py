"""Observability overhead benchmark — the tracing cost gate.

Runs the observed E1 workload (``repro.obs.scenario.run_observed_e1``)
three ways and a two-shard topology two ways, writing
``BENCH_obs.json`` at the repo root:

* **disabled** — metrics registry off, no provenance, no trace: the
  overhead baseline (the same null-instrument fast paths the perf
  benchmarks measure);
* **observed** — metrics + cell provenance at the default production
  sampling (1 in ``DEFAULT_SAMPLE`` journeys) + profiling spans on the
  four kernel hot paths: the configuration a long co-verification run
  would actually ship with;
* **traced** — everything on: every journey traced (``sample=1``) and
  the full JSONL decision trace written to disk (informational — this
  is the debug configuration, not the production one);
* **sharded_disabled / sharded_observed** — the chained two-shard
  topology (``repro.shard.run_topology``) without and with distributed
  telemetry (coordinator-stamped trace ids, per-shard provenance,
  merged payloads): the PR 10 cost gate.  Telemetry *shipping* happens
  after the timed region, so this measures the in-band instrument cost
  only — exactly what a long sharded run pays per window.

The gates: the *observed* configuration must keep at least
``1 - REPRO_OBS_BUDGET`` (default 0.88, i.e. <= 12 % overhead) of the
disabled throughput, and *sharded_observed* must keep at least
``1 - REPRO_OBS_SHARD_BUDGET`` (default 0.90 — IPC wall-clock jitter
dominates the instrument cost in a multi-process run) of the sharded
baseline.

Why 12 %: the observed configuration's cost decomposes as ~1.2 k
per-event histogram samples per run (``sync.lag_s`` per window,
``cosim.cell_ingress_latency_s`` and ``sync.queue_wait_s.cell`` per
cell, four ``prof.*`` spans per window) at roughly 2 µs apiece of
pure-Python instrument work — a real, explained ~7 % median cost on
this millisecond-scale workload, plus run-to-run scheduler noise of a
few points.  The per-call registry lookup and timer allocation that
used to push this past 8 % were removed (``attach_profiling`` now
binds one reusable span timer per hot path); what remains is the
instrument semantics themselves.

Measurement discipline: every configuration takes one **warm-up run**
first (cold-start page faults and allocator growth used to land in the
first measured run and inflate the apparent overhead), the two
compared arms are **interleaved** repeat by repeat so thermal and
scheduler drift hits both equally, and each arm reports its best of
``REPEATS`` runs.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs.py

``REPRO_BENCH_SCALE`` scales the cell workload exactly as it does for
the other benchmarks (CI smoke-runs at 0.25).
"""

import os
import sys
import tempfile
from pathlib import Path

if __package__ in (None, ""):  # script mode
    sys.path.insert(0, str(Path(__file__).parent))
    from common import save_bench_json, scale, scaled
else:
    from .common import save_bench_json, scale, scaled

from repro.obs.scenario import run_observed_e1

#: default production sampling: trace 1 in N cell journeys
DEFAULT_SAMPLE = 16

#: best-of-N repeats per configuration (after one warm-up run)
REPEATS = 5

#: best-of-N repeats for the sharded arms — multi-process wall clock
#: jitters far more than in-process timing, so the sharded best-of
#: needs as many repeats as the local arms despite the slower runs
SHARD_REPEATS = 5


def _budget() -> float:
    """Allowed fractional throughput cost of the observed config."""
    return float(os.environ.get("REPRO_OBS_BUDGET", "0.12"))


def _shard_budget() -> float:
    """Allowed fractional throughput cost of the sharded observed
    config."""
    return float(os.environ.get("REPRO_OBS_SHARD_BUDGET", "0.10"))


def _condense(report):
    """One arm's record: the workload stats plus observability
    byproducts worth keeping in the artifact."""
    condensed = dict(report["workload"])
    provenance = report.get("provenance")
    if provenance is not None:
        condensed["provenance"] = provenance
    if "trace_records" in report:
        condensed["trace_records"] = report["trace_records"]
    return condensed


def _measure_pair(cells, baseline_kwargs, observed_kwargs,
                  repeats=REPEATS):
    """Warm-up + interleaved best-of-*repeats* of two E1 arms.

    Interleaving (baseline, observed, baseline, observed, ...) means
    thermal and scheduler drift over the measurement window biases
    both arms equally instead of whichever ran last.
    """
    run_observed_e1(cells=cells, **baseline_kwargs)  # warm-up
    run_observed_e1(cells=cells, **observed_kwargs)  # warm-up
    best = [None, None]
    for _ in range(repeats):
        for slot, kwargs in enumerate((baseline_kwargs,
                                       observed_kwargs)):
            report = run_observed_e1(cells=cells, **kwargs)
            if best[slot] is None or (report["workload"]["cycles_per_s"]
                                      > best[slot]["cycles_per_s"]):
                best[slot] = _condense(report)
    return best[0], best[1]


def _measure(cells, repeats=REPEATS, **kwargs):
    """Warm-up + best-of-*repeats* of a single E1 arm."""
    run_observed_e1(cells=cells, **kwargs)  # warm-up, discarded
    best = None
    for _ in range(repeats):
        report = run_observed_e1(cells=cells, **kwargs)
        if best is None or (report["workload"]["cycles_per_s"]
                            > best["cycles_per_s"]):
            best = _condense(report)
    return best


def _measure_sharded(cells, repeats=SHARD_REPEATS):
    """Warm-up + interleaved best-of-*repeats* of the chained
    two-shard topology without and with distributed telemetry."""
    from repro.shard import ShardSpec, TopologySpec, run_topology

    def build(observe):
        return TopologySpec(
            shards=[ShardSpec("shard0"), ShardSpec("shard1")],
            cells=cells, chain=True, observe=observe)

    def condense(report, observe):
        condensed = {"cells": cells,
                     "observe": observe,
                     "wall_s": report["wall_s"],
                     "cycles_per_s": report["cycles_per_s"],
                     "clocks": report["totals"]["clocks"],
                     "digest": report["digest"]}
        telemetry = report.get("telemetry")
        if telemetry is not None:
            condensed["spans"] = len(telemetry["spans"])
            condensed["provenance"] = telemetry["provenance"]
        return condensed

    run_topology(build(False), mode="sharded")  # warm-up
    run_topology(build(True), mode="sharded")  # warm-up
    best = [None, None]
    for _ in range(repeats):
        for slot, observe in enumerate((False, True)):
            report = run_topology(build(observe), mode="sharded")
            if best[slot] is None or (report["cycles_per_s"]
                                      > best[slot]["cycles_per_s"]):
                best[slot] = condense(report, observe)
    return best[0], best[1]


def bench_obs(cells=None):
    """Overhead of the observability layer on the E1 workload and on
    the chained two-shard topology."""
    cells = scaled(160) if cells is None else cells
    shard_cells = scaled(96)

    disabled, observed = _measure_pair(
        cells,
        dict(observe=False, sample=0),
        dict(observe=True, sample=DEFAULT_SAMPLE, profile=True))
    with tempfile.TemporaryDirectory() as tmp:
        traced = _measure(cells, repeats=1, observe=True, sample=1,
                          profile=True,
                          trace=Path(tmp) / "bench.trace.jsonl")
    sharded_disabled, sharded_observed = _measure_sharded(shard_cells)

    base_rate = disabled["cycles_per_s"]
    shard_rate = sharded_disabled["cycles_per_s"]
    payload = {
        "cells": cells,
        "shard_cells": shard_cells,
        "sample": DEFAULT_SAMPLE,
        "budget": _budget(),
        "shard_budget": _shard_budget(),
        "disabled": disabled,
        "observed": observed,
        "traced": traced,
        "sharded_disabled": sharded_disabled,
        "sharded_observed": sharded_observed,
        "observed_overhead": 1.0 - observed["cycles_per_s"] / base_rate,
        "traced_overhead": 1.0 - traced["cycles_per_s"] / base_rate,
        "sharded_overhead":
            1.0 - sharded_observed["cycles_per_s"] / shard_rate,
        "sharded_digests_match": (sharded_disabled["digest"]
                                  == sharded_observed["digest"]),
    }
    return payload


def main():
    budget = _budget()
    shard_budget = _shard_budget()
    print(f"observability overhead benchmark "
          f"(budget {budget:.0%} local / {shard_budget:.0%} sharded, "
          f"REPRO_BENCH_SCALE={scale():g})")
    payload = bench_obs()
    path = save_bench_json("obs", payload)
    for key in ("disabled", "observed", "traced", "sharded_disabled",
                "sharded_observed"):
        stats = payload[key]
        note = ""
        if key == "observed" or key == "traced":
            overhead = payload[f"{key}_overhead"]
            note = f"  ({overhead:+.1%} vs disabled)"
        elif key == "sharded_observed":
            note = (f"  ({payload['sharded_overhead']:+.1%} vs "
                    "sharded_disabled)")
        print(f"  {key:<16}: {stats['cycles_per_s']:>10.0f} cyc/s "
              f"({stats['wall_s']:.3f} s){note}")
    print(f"  -> {path}")

    if not payload["sharded_digests_match"]:
        print("FAIL: telemetry-on sharded digest diverges from the "
              "telemetry-off run (observability perturbed the "
              "simulation)")
        return 1
    failed = False
    if payload["observed_overhead"] > budget:
        print(f"FAIL: observed overhead "
              f"{payload['observed_overhead']:.1%} exceeds the "
              f"{budget:.0%} budget at 1-in-{DEFAULT_SAMPLE} sampling")
        failed = True
    else:
        print(f"observed overhead {payload['observed_overhead']:.1%} "
              f"within the {budget:.0%} budget")
    if payload["sharded_overhead"] > shard_budget:
        print(f"FAIL: sharded observed overhead "
              f"{payload['sharded_overhead']:.1%} exceeds the "
              f"{shard_budget:.0%} budget")
        failed = True
    else:
        print(f"sharded observed overhead "
              f"{payload['sharded_overhead']:.1%} within the "
              f"{shard_budget:.0%} budget")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
