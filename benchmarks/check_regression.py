"""Benchmark regression guard — fails CI on a large perf drop.

Reads the *committed* ``BENCH_kernel.json`` / ``BENCH_e1.json`` /
``BENCH_obs.json`` / ``BENCH_shard.json`` baselines at the repo root
(before they get overwritten), re-runs the benchmarks fresh, writes
the new artifacts, and compares the throughput figures (simulated DUT
clock cycles per wall second):

* kernel: event-driven and cycle-engine clocking of the port-module
  bench;
* e1: co-simulation and pure-RTL throughput of the headline workload;
* obs: the same workload with metrics + sampled cell provenance +
  profiling on, plus the chained two-shard topology with distributed
  telemetry on/off — both overhead gates (``REPRO_OBS_BUDGET``,
  ``REPRO_OBS_SHARD_BUDGET``) and the telemetry-on digest check are
  enforced here too, not just by ``benchmarks/bench_obs.py``;
* shard: local vs one- vs two-process sharded topologies, plus the
  host-aware 2-vs-1 shard scaling gate (``REPRO_SHARD_SCALING_MIN``,
  default 1.5, on hosts with >= 3 usable cores;
  ``REPRO_SHARD_SCALING_MIN_SERIAL``, default 0.8, elsewhere — see
  ``benchmarks/bench_shard.py`` for why the bar is host-aware) and,
  at full scale, the transport-overhead ceiling
  (``REPRO_SHARD_OVERHEAD_MAX``, default 0.25: the one-worker run may
  cost at most 25 % over the in-process reference).

A metric more than ``REPRO_BENCH_TOLERANCE`` (default 0.30, i.e. 30 %)
below its baseline fails the run with exit code 1.  The generous
default absorbs hardware differences between the machine that
committed the baseline and the CI runner; throughput is roughly
scale-independent, so smoke scales compare against full-scale
baselines — except the shard *transport* rows, whose per-frame fixed
costs make the absolute figure scale-dependent (they are guarded only
at full scale; the scale-free shard guards always run).

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

import json
import os
import sys
from pathlib import Path

if __package__ in (None, ""):  # script mode
    sys.path.insert(0, str(Path(__file__).parent))
    from bench_kernel import bench_e1, bench_kernel
    from bench_obs import bench_obs
    from bench_shard import bench_shard
    from common import save_bench_json, scale
else:
    from .bench_kernel import bench_e1, bench_kernel
    from .bench_obs import bench_obs
    from .bench_shard import bench_shard
    from .common import save_bench_json, scale

REPO_ROOT = Path(__file__).parent.parent

#: (artifact, human label, key path to the guarded throughput figure)
CHECKS = [
    ("kernel", "kernel event-driven", ("event_driven", "cycles_per_s")),
    ("kernel", "kernel cycle-engine", ("cycle_engine", "cycles_per_s")),
    ("kernel", "kernel generator pb", ("generator_playback",
                                       "cycles_per_s")),
    ("kernel", "kernel event backend", ("event_backend",
                                        "cycles_per_s")),
    ("e1", "e1 co-simulation", ("cosim", "cycles_per_s")),
    ("e1", "e1 pure RTL", ("pure_rtl", "cycles_per_s")),
    ("e1", "e1 pure RTL (event)", ("pure_rtl_event", "cycles_per_s")),
    ("e1", "e1 behavioural", ("behav", "cycles_per_s")),
    ("obs", "e1 observed (sampled)", ("observed", "cycles_per_s")),
    ("shard", "shard local reference", ("local", "cycles_per_s")),
]

#: shard transport rows carry real fixed per-frame costs, so their
#: absolute throughput is NOT scale-independent: at smoke scale
#: (REPRO_BENCH_SCALE < 1) a quarter of the cells amortise the same
#: framing overhead and the figure legitimately drops ~30%.  They are
#: compared against the committed full-scale baseline only at full
#: scale; the scale-free guards (local reference row above and the
#: 2-vs-1 scaling floor) run at every scale.
FULL_SCALE_CHECKS = [
    ("shard", "shard 1-process", ("one_shard", "cycles_per_s")),
    ("shard", "shard 2-process", ("two_shard", "cycles_per_s")),
    ("obs", "obs sharded observed", ("sharded_observed",
                                     "cycles_per_s")),
]


def _dig(payload, keys):
    for key in keys:
        if not isinstance(payload, dict) or key not in payload:
            return None
        payload = payload[key]
    return payload


def main() -> int:
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30"))

    # baselines first: the fresh run overwrites the artifacts in place
    baselines = {}
    for name in ("kernel", "e1", "obs", "shard"):
        path = REPO_ROOT / f"BENCH_{name}.json"
        if path.is_file():
            baselines[name] = json.loads(path.read_text())

    print(f"benchmark regression guard "
          f"(tolerance {tolerance:.0%}, REPRO_BENCH_SCALE={scale():g})")
    fresh = {"kernel": bench_kernel(), "e1": bench_e1(),
             "obs": bench_obs(), "shard": bench_shard()}
    for name, payload in fresh.items():
        save_bench_json(name, payload)

    # compiled-backend guards (independent of committed baselines):
    # the default "auto" configs must actually levelize components,
    # and compiled must not run slower than the event backend.
    compiled = _dig(fresh["kernel"],
                    ("cycle_engine", "compiled_components"))
    if not compiled:
        print("FAIL: cycle-engine bench ran no compiled components "
              "(auto backend fell back to the event kernel)")
        return 1
    ratio = _dig(fresh["e1"], ("compiled_vs_event",))
    if ratio is not None and ratio < 1.0:
        print(f"FAIL: compiled backend slower than the event backend "
              f"({ratio:.2f}x) on the e1 pure-RTL bench")
        return 1
    # abstraction guard: the zero-delta behavioural twin skips the
    # HDL kernel and synchroniser entirely, so falling below compiled
    # co-simulation throughput means the swap machinery regressed
    ratio = _dig(fresh["e1"], ("behav_vs_compiled",))
    if ratio is not None and ratio < 1.0:
        print(f"FAIL: behavioural twin slower than compiled "
              f"co-simulation ({ratio:.2f}x) on the e1 workload")
        return 1
    # sharded-topology scaling guard (independent of committed
    # baselines): 2 shards vs 1 must clear the host-class floor —
    # >= REPRO_SHARD_SCALING_MIN (1.5) where a coordinator and two
    # workers can truly run in parallel, >= the serial floor (0.8,
    # catches protocol serialisation bugs) on smaller hosts.
    shard = fresh["shard"]
    if not shard.get("digests_match", True):
        print("FAIL: sharded output digests diverge from the local "
              "reference across transports")
        return 1
    floor = shard["scaling_floor"]
    kind = ("parallel" if shard["parallel_capable"]
            else f"serial, {shard['cpus']} cpu(s)")
    if shard["scaling"] < floor:
        print(f"FAIL: 2-shard scaling {shard['scaling']:.2f}x below "
              f"the {floor:g}x floor ({kind} host)")
        return 1
    print(f"2-shard scaling {shard['scaling']:.2f}x meets the "
          f"{floor:g}x floor ({kind} host)")
    # transport-overhead guard: shipping the op stream to one worker
    # process must stay cheap relative to the in-process reference.
    # The ratio is scale-dependent (fewer cells amortise the same
    # fixed per-frame cost), so like the transport throughput rows it
    # is enforced at full scale only.
    overhead_max = float(os.environ.get("REPRO_SHARD_OVERHEAD_MAX",
                                        "0.25"))
    overhead = shard["transport_overhead"]
    if scale() >= 1.0:
        if overhead > overhead_max:
            print(f"FAIL: shard transport overhead {overhead:+.1%} "
                  f"above the {overhead_max:.0%} ceiling "
                  f"(REPRO_SHARD_OVERHEAD_MAX)")
            return 1
        print(f"shard transport overhead {overhead:+.1%} within the "
              f"{overhead_max:.0%} ceiling")
    else:
        print(f"  (smoke scale: transport overhead {overhead:+.1%} "
              f"recorded, ceiling not enforced)")
    # observability overhead guards (independent of committed
    # baselines): calling bench_obs() directly bypasses its __main__
    # gating, so the budgets are re-enforced here — the local observed
    # arm and, alongside it, the sharded observed arm introduced with
    # distributed telemetry.
    obs = fresh["obs"]
    if not obs.get("sharded_digests_match", True):
        print("FAIL: telemetry-on sharded digest diverges from the "
              "telemetry-off run")
        return 1
    for overhead_key, budget_key, label in (
            ("observed_overhead", "budget", "e1 observed"),
            ("sharded_overhead", "shard_budget", "sharded observed")):
        overhead = obs[overhead_key]
        budget = obs[budget_key]
        if overhead > budget:
            print(f"FAIL: {label} overhead {overhead:+.1%} exceeds "
                  f"the {budget:.0%} observability budget")
            return 1
        print(f"{label} overhead {overhead:+.1%} within the "
              f"{budget:.0%} budget")

    if not baselines:
        print("no committed baselines found — artifacts written, "
              "nothing to compare")
        return 0

    checks = list(CHECKS)
    if scale() >= 1.0:
        checks += FULL_SCALE_CHECKS
    else:
        skipped = ", ".join(label for _, label, _ in FULL_SCALE_CHECKS)
        print(f"  (smoke scale: skipping scale-dependent rows: "
              f"{skipped})")
    failures = []
    for name, label, keys in checks:
        old = _dig(baselines.get(name, {}), keys)
        new = _dig(fresh[name], keys)
        if old is None or new is None or old <= 0:
            print(f"  {label:<22} baseline missing — skipped")
            continue
        ratio = new / old
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSION"
            failures.append(label)
        print(f"  {label:<22} {old:>10.0f} -> {new:>10.0f} cyc/s "
              f"({ratio:>6.2f}x)  {verdict}")

    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed more than "
              f"{tolerance:.0%}: {', '.join(failures)}")
        return 1
    print("all guarded metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
