"""Tests for the command-line interface."""

import json
from pathlib import Path

from repro.cli import main


def test_inventory_lists_all_subpackages(capsys):
    assert main(["inventory"]) == 0
    out = capsys.readouterr().out
    for name in ("netsim", "traffic", "atm", "hdl", "rtl", "board",
                 "core", "sweep", "shard", "analysis"):
        assert f"repro.{name}" in out


def test_examples_listing(capsys):
    assert main(["examples"]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "accounting_coverification" in out


def test_unknown_example_rejected(capsys):
    assert main(["example", "does_not_exist"]) == 2
    assert "unknown example" in capsys.readouterr().err


def test_run_example_quickstart(capsys):
    assert main(["example", "quickstart"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_stats_reports_cosim_metrics(capsys, tmp_path):
    json_path = tmp_path / "stats.json"
    trace_path = tmp_path / "trace.jsonl"
    assert main(["stats", "--cells", "16",
                 "--json", str(json_path),
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    for needle in ("windows granted", "null messages", "stale advances",
                   "sync.lag_s", "cell_ingress_latency", "delta cycles"):
        assert needle in out
    report = json.loads(json_path.read_text())
    assert report["workload"]["scenario"] == "e1_accounting"
    assert report["entities"][0]["sync"]["messages_posted"] > 0
    assert trace_path.read_text().count('"ev"') == \
        report["trace_records"]


def test_stats_prints_hop_table_and_profile(capsys):
    assert main(["stats", "--cells", "16", "--json", "",
                 "--profile"]) == 0
    out = capsys.readouterr().out
    assert "cell journey (per-hop latency):" in out
    assert "source -> sync post" in out
    assert "sync -> DUT ingress" in out
    assert "cells traced: 16/16 (1 in 1)" in out
    assert "hot-path profile:" in out
    assert "prof.sync_advance_s" in out


def test_stats_sampling_reduces_traced_cells(capsys):
    assert main(["stats", "--cells", "16", "--json", "",
                 "--sample", "4"]) == 0
    assert "cells traced: 4/16 (1 in 4)" in capsys.readouterr().out


def test_trace_run_and_export(capsys, tmp_path):
    from repro.obs import flow_tracks, validate_chrome_trace
    from repro.obs.chrome import HDL_TID, NETSIM_TID

    jsonl = tmp_path / "e1.trace.jsonl"
    chrome = tmp_path / "e1.trace.json"
    assert main(["trace", "run", "--cells", "16",
                 "--out", str(jsonl), "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "trace record(s)" in out
    assert "cells traced: 16/16" in out
    assert "16 cell flows" in out

    # acceptance: the exported trace is schema-valid and every sampled
    # cell's flow connects the netsim and HDL time-domain tracks
    payload = json.loads(chrome.read_text())
    summary = validate_chrome_trace(payload)
    assert summary["flows"] == 16
    for tracks in flow_tracks(payload).values():
        assert {NETSIM_TID, HDL_TID} <= tracks

    # standalone export of the same JSONL agrees
    out2 = tmp_path / "again.trace.json"
    assert main(["trace", "export", str(jsonl),
                 "--out", str(out2)]) == 0
    assert "16 cell flows" in capsys.readouterr().out
    assert validate_chrome_trace(json.loads(out2.read_text())) == \
        summary


def test_trace_export_default_output_path(capsys, tmp_path):
    jsonl = tmp_path / "run.trace.jsonl"
    assert main(["trace", "run", "--cells", "8", "--sample", "2",
                 "--out", str(jsonl)]) == 0
    assert "cells traced: 4/8 (1 in 2)" in capsys.readouterr().out
    assert main(["trace", "export", str(jsonl)]) == 0
    capsys.readouterr()
    assert (tmp_path / "run.trace.json").is_file()


def test_trace_export_rejects_missing_and_invalid(capsys, tmp_path):
    assert main(["trace", "export",
                 str(tmp_path / "absent.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json}\n")
    assert main(["trace", "export", str(bad)]) == 1
    assert "invalid trace" in capsys.readouterr().err


def test_sweep_trace_dir_flag(capsys, tmp_path):
    trace_dir = tmp_path / "traces"
    assert main(["sweep", "--traffic", "cbr", "--ports", "2",
                 "--seeds", "0", "--cells", "8", "--jobs", "1",
                 "--json", "", "--trace-dir", str(trace_dir)]) == 0
    capsys.readouterr()
    assert (trace_dir / "cbr-p2-s0-conservative.trace.jsonl").is_file()


def test_stats_lockstep_disables_json(capsys):
    assert main(["stats", "--cells", "8", "--lockstep",
                 "--json", ""]) == 0
    out = capsys.readouterr().out
    assert "lockstep sync" in out
    assert "wrote" not in out


def test_results_prints_tables_when_present(capsys):
    from repro.cli import _results_dir
    code = main(["results"])
    out = capsys.readouterr().out
    if _results_dir().is_dir() and any(_results_dir().glob("*.txt")):
        assert code == 0
        assert "E1" in out or "E2" in out or "E" in out
    else:
        assert code == 1


def test_sweep_from_flags(capsys, tmp_path):
    json_path = tmp_path / "sweep.json"
    assert main(["sweep", "--traffic", "cbr", "--ports", "2",
                 "--seeds", "0,1", "--cells", "8", "--jobs", "2",
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "scenario sweep" in out
    assert "aggregate: 2/2 runs passed" in out
    payload = json.loads(json_path.read_text())
    assert payload["benchmark"] == "sweep"
    assert len(payload["runs"]) == 2
    assert payload["aggregate"]["runs_passed"] == 2
    assert payload["execution"]["jobs"] == 2


def test_sweep_from_spec_file(capsys, tmp_path):
    spec_path = tmp_path / "sweep.json"
    spec_path.write_text(json.dumps({
        "matrix": {"traffic": ["cbr"], "ports": [2], "seeds": [0],
                   "sync": ["conservative"]},
        "run": {"cells": 8},
        "execution": {"jobs": 1},
    }))
    assert main(["sweep", "--spec", str(spec_path),
                 "--json", ""]) == 0
    assert "1/1 runs passed" in capsys.readouterr().out


def test_sweep_rejects_bad_matrix(capsys):
    assert main(["sweep", "--traffic", "warp", "--json", ""]) == 2
    assert "invalid sweep" in capsys.readouterr().err


def test_shard_both_modes_digests_match(capsys):
    assert main(["shard", "--shards", "2", "--levels", "behav",
                 "--cells", "12", "--chain", "--mode", "both"]) == 0
    out = capsys.readouterr().out
    assert "mode local" in out and "mode sharded" in out
    assert "byte-identical across modes" in out


def test_shard_from_spec_file_writes_report(capsys, tmp_path):
    spec_path = tmp_path / "topo.json"
    spec_path.write_text(json.dumps(
        {"topology": {"count": 2, "level": "behav", "chain": True},
         "run": {"cells": 8}}))
    report_path = tmp_path / "shard.json"
    assert main(["shard", "--spec", str(spec_path),
                 "--mode", "local", "--json", str(report_path)]) == 0
    assert "2 shard(s)" in capsys.readouterr().out
    payload = json.loads(report_path.read_text())
    assert payload["benchmark"] == "shard_topology"
    assert payload["mode"] == "local"
    assert len(payload["shards"]) == 2


def test_shard_rejects_bad_topology(capsys):
    assert main(["shard", "--shards", "2",
                 "--levels", "behav,rtl,auto"]) == 2
    assert "invalid topology" in capsys.readouterr().err
    assert main(["shard", "--shards", "0"]) == 2


def test_serve_cli_end_to_end():
    """The serve subcommand over a real subprocess: parse the bound
    address from the banner, run one job, request shutdown."""
    import os
    import re
    import subprocess
    import sys as _sys

    from repro.shard import ServeClient

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep \
        + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [_sys.executable, "-m", "repro", "serve", "--jobs", "1"],
        stdout=subprocess.PIPE, text=True, env=env)
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        assert match, f"no address in banner: {banner!r}"
        address = (match.group(1), int(match.group(2)))
        with ServeClient(address) as client:
            job_id = client.submit(
                {"name": "cli-smoke", "traffic": "cbr", "ports": 2,
                 "seed": 0, "sync": "conservative", "level": "behav",
                 "cells": 8, "load": 0.25})
            record = client.result(job_id, wait=True, timeout=60)
            assert record["status"] == "done"
            assert record["result"]["passed"]
            client.shutdown()
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "shut down after 1 job(s)" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
