"""The observed E1 reference scenario behind ``python -m repro stats``.

The paper's headline workload (E1): CBR sources on four ports of an
abstract ATM switch, with the RTL accounting unit coupled as the DUT
on the aggregate switched stream.  This module runs that scenario with
the observability layer enabled and returns one machine-readable
report — windows granted, null messages, the lag histogram, kernel
event counts and per-cell latency — the evidence base for the paper's
sync-cost and time-granularity claims.

Kept deliberately self-contained (mirroring, not importing, the
builder in ``benchmarks/common.py``) so the installed package can run
it without the repo checkout.
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import Dict, Optional, Union

from ..atm import AtmCell, AtmSwitch
from ..core import CoVerificationEnvironment, TimeBase
from ..netsim import SinkModule
from ..rtl import AccountingUnitRtl
from ..traffic import ConstantBitRate, TrafficSource
from .profile import attach_profiling

__all__ = ["run_observed_e1"]


def run_observed_e1(cells: int = 64, load: float = 0.25,
                    lockstep: bool = False,
                    trace: Optional[Union[str, Path]] = None,
                    sample: int = 1,
                    profile: bool = False,
                    observe: bool = True) -> Dict[str, object]:
    """Run the observed E1 scenario; returns the metrics report.

    Args:
        cells: total cell budget across the four ports.
        load: per-port line occupancy of the CBR sources.
        lockstep: use the naive per-clock synchroniser (the E2
            ablation) instead of the conservative protocol.
        trace: optional JSON-lines trace sink path.
        sample: cell-provenance sampling — trace 1 in *sample* cell
            journeys (1 = every cell, 0 disables provenance).
        profile: attach wall-clock profiling spans to the four kernel
            hot paths (``prof.*`` histograms in the report).
        observe: pass ``False`` to run the identical workload with the
            metrics registry disabled — the overhead baseline measured
            by ``benchmarks/bench_obs.py``.
    """
    timebase = TimeBase.for_line_rate()
    cell_time = timebase.cell_time_seconds
    env = CoVerificationEnvironment(timebase=timebase,
                                    lockstep=lockstep, trace=trace,
                                    observe=observe,
                                    provenance_sample=sample)
    dut = AccountingUnitRtl(env.hdl, "acct", env.clk)
    entity = env.add_dut(rx_port=dut.rx, tick_signal=dut.tariff_tick)
    if profile:
        attach_profiling(env)

    switch = AtmSwitch(env.network, "switch", num_ports=4,
                       cell_time=cell_time)
    per_port = max(1, cells // 4)
    period = cell_time / load
    for port in range(4):
        vci = 100 + port
        switch.install_connection(port, 1, vci, (port + 1) % 4, 1, vci)
        dut.register(1, vci, units_per_cell=2)

        host = env.network.add_node(f"host{port}")
        source = TrafficSource(
            f"src{port}", ConstantBitRate(period=period, seed=port),
            packet_factory=lambda i, v=vci: AtmCell.with_payload(
                1, v, [i % 256]).to_packet(),
            count=per_port, tracker=env.provenance)
        tap = env.make_cell_tap(f"tap{port}", entity)
        sink = SinkModule("sink",
                          on_packet=(env.provenance.sink_hook(
                              f"sink{port}")
                              if env.provenance is not None else None))
        for module in (source, tap, sink):
            host.add_module(module)
        host.connect(source, 0, tap, 0)
        host.bind_port_output(0, tap, 0)
        host.bind_port_input(0, sink, 0)
        env.network.add_link(host, 0, switch.node, port,
                             rate_bps=155.52e6)
        env.network.add_link(switch.node, port, host, 0,
                             rate_bps=155.52e6)

    start = _time.perf_counter()
    env.run()
    entity.send_tariff_tick(env.network.kernel.now + cell_time)
    env.finish()
    wall = _time.perf_counter() - start

    report = env.metrics()
    hdl_clocks = env.hdl.now // timebase.clock_period_ticks
    report["workload"] = {
        "scenario": "e1_accounting",
        "cells": per_port * 4,
        "load": load,
        "hdl_clocks": hdl_clocks,
        "wall_s": wall,
        "cycles_per_s": hdl_clocks / wall if wall > 0 else 0.0,
    }
    return report
