"""ATM model suite.

Cells and HEC, VPI/VCI switching tables, GCRA policing, the charging
(accounting) reference algorithm, AAL5 segmentation/reassembly and an
abstract N-port switch model — the OPNET "ATM model suite" equivalent
the paper chose its network simulator for.
"""

from .aal import AalError, Reassembler, TRAILER_OCTETS, crc32_aal5, segment
from .buffering import PbsQueueModule
from .accounting import (AccountingError, AccountingUnit, ChargingRecord,
                         Tariff)
from .cell import (AtmCell, CELL_BITS, CELL_OCTETS, CellFormatError,
                   HEADER_OCTETS, IDLE_VPI_VCI, PAYLOAD_OCTETS)
from .hec import HEC_COSET, HEC_POLY, check_hec, crc8, hec_octet
from .policing import LeakyBucket, VirtualScheduling, police_stream
from .oam import (FUNC_LOOPBACK, LoopbackInitiator, LoopbackResponder,
                  OAM_FAULT_MANAGEMENT, OamError, OamInfo,
                  PT_END_TO_END_F5, PT_SEGMENT_F5, check_crc10, crc10,
                  is_oam_cell, make_loopback_cell, parse_oam_cell)
from .signaling import (CALL_TIMER, CallControlProcess, CallRequest,
                        HOLD_TIMER)
from .switch import (AtmSwitch, GlobalControlUnit, PortModule,
                     STM1_CELL_TIME, make_setup_packet,
                     make_teardown_packet)
from .switching import ConnectionTable, RoutingEntry, RoutingError

__all__ = [
    "AalError", "Reassembler", "TRAILER_OCTETS", "crc32_aal5", "segment",
    "PbsQueueModule",
    "CALL_TIMER", "CallControlProcess", "CallRequest", "HOLD_TIMER",
    "FUNC_LOOPBACK", "LoopbackInitiator", "LoopbackResponder",
    "OAM_FAULT_MANAGEMENT", "OamError", "OamInfo", "PT_END_TO_END_F5",
    "PT_SEGMENT_F5", "check_crc10", "crc10", "is_oam_cell",
    "make_loopback_cell", "parse_oam_cell",
    "AccountingError", "AccountingUnit", "ChargingRecord", "Tariff",
    "AtmCell", "CELL_BITS", "CELL_OCTETS", "CellFormatError",
    "HEADER_OCTETS", "IDLE_VPI_VCI", "PAYLOAD_OCTETS",
    "HEC_COSET", "HEC_POLY", "check_hec", "crc8", "hec_octet",
    "LeakyBucket", "VirtualScheduling", "police_stream",
    "AtmSwitch", "GlobalControlUnit", "PortModule", "STM1_CELL_TIME",
    "make_setup_packet", "make_teardown_packet",
    "ConnectionTable", "RoutingEntry", "RoutingError",
]
