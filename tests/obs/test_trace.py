"""Tests for the JSON-lines trace writer (repro.obs.trace)."""

import io
import json

import pytest

from repro.obs import TraceWriter


def test_in_memory_records():
    trace = TraceWriter()
    trace.emit("post", t=1e-6, type="cell")
    trace.emit("null", t=2e-6, stale=False)
    assert trace.emitted == 2
    assert trace.records[0] == {"ev": "post", "t": 1e-6, "type": "cell"}
    assert trace.records[1]["ev"] == "null"


def test_path_sink_writes_json_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceWriter(path) as trace:
        trace.emit("window", t_cur=1e-6, hdl_s=0.0)
        trace.emit("drain", t=None)
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first == {"ev": "window", "hdl_s": 0.0, "t_cur": 1e-6}
    # keys are sorted for deterministic diffs
    assert lines[0].index('"ev"') < lines[0].index('"t_cur"')


def test_file_like_sink_not_closed():
    buffer = io.StringIO()
    trace = TraceWriter(buffer)
    trace.emit("finish", residual=0)
    trace.close()
    assert not buffer.closed  # writer does not own the sink
    assert json.loads(buffer.getvalue())["ev"] == "finish"
    # in-memory list stays empty when a sink is present
    assert trace.records == []


def test_close_idempotent(tmp_path):
    trace = TraceWriter(tmp_path / "t.jsonl")
    trace.emit("post", t=0.0)
    trace.close()
    trace.close()
    assert trace.emitted == 1


def test_context_manager_flushes_on_exception(tmp_path):
    """Regression: records emitted before a crash must reach disk —
    the partial trace is the evidence needed to debug the failure."""
    path = tmp_path / "crash.jsonl"
    with pytest.raises(RuntimeError):
        with TraceWriter(path) as trace:
            trace.emit("post", t=1e-6, type="cell")
            trace.emit("window", t_cur=2e-6, hdl_s=0.0)
            raise RuntimeError("simulated mid-run failure")
    assert trace.closed
    lines = [json.loads(line)
             for line in path.read_text().splitlines()]
    assert [line["ev"] for line in lines] == ["post", "window"]


def test_line_buffered_records_visible_before_close(tmp_path):
    path = tmp_path / "live.jsonl"
    trace = TraceWriter(path)
    trace.emit("post", t=0.0)
    # line buffering: a crashed process would still leave whole lines
    assert json.loads(path.read_text())["ev"] == "post"
    trace.close()


def test_emit_after_close_raises(tmp_path):
    trace = TraceWriter(tmp_path / "t.jsonl")
    trace.close()
    assert trace.closed
    with pytest.raises(ValueError, match="closed"):
        trace.emit("post", t=0.0)


def test_in_memory_writer_close_and_reject():
    trace = TraceWriter()
    trace.emit("post", t=0.0)
    trace.close()
    with pytest.raises(ValueError):
        trace.emit("null", t=1e-6)
    assert trace.records[0]["ev"] == "post"


def test_defaults_stamped_on_every_record():
    trace = TraceWriter(defaults={"shard": "shard7"})
    trace.emit("post", t=1e-6)
    trace.emit("window", t_cur=2e-6)
    assert all(r["shard"] == "shard7" for r in trace.records)
    assert trace.records[0]["ev"] == "post"


def test_event_fields_win_over_defaults():
    trace = TraceWriter(defaults={"shard": "shard7", "mode": "rtl"})
    trace.emit("post", t=1e-6, shard="override")
    assert trace.records[0]["shard"] == "override"
    assert trace.records[0]["mode"] == "rtl"
