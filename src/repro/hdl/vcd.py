"""Value-change-dump (VCD) waveform output.

The paper lists "HDL simulators for depicting waveforms" among the
analysis capabilities the environment preserves; :class:`VcdWriter`
dumps selected signals in the standard IEEE 1364 VCD format readable
by GTKWave and friends.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, TextIO, Union

from .signal import Signal
from .simulator import Simulator

__all__ = ["VcdWriter"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short printable VCD identifier for signal *index*."""
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdWriter:
    """Streams signal changes of a simulator into a VCD file.

    Usage::

        sim = Simulator()
        clk = sim.signal("clk", init="0")
        with VcdWriter(sim, "run.vcd", [clk]) as vcd:
            sim.add_clock(clk, period=10)
            sim.run(until=100)
    """

    def __init__(self, sim: Simulator, path: Union[str, Path],
                 signals: Optional[Sequence[Signal]] = None,
                 timescale: str = "1ns") -> None:
        self.sim = sim
        self.path = Path(path)
        self.signals = list(signals if signals is not None else sim.signals)
        self._ids: Dict[int, str] = {
            id(sig): _identifier(i) for i, sig in enumerate(self.signals)}
        self._handle: Optional[TextIO] = None
        self._last_dumped_time: Optional[int] = None
        self._timescale = timescale
        self.changes_written = 0

    # -- lifecycle ---------------------------------------------------------
    def open(self) -> "VcdWriter":
        """Write the header, dump initial values, attach to the kernel."""
        self._handle = self.path.open("w")
        self._write_header()
        self.sim.signal_hooks.append(self._on_change)
        return self

    def close(self) -> None:
        """Detach from the kernel and close the file."""
        if self._handle is None:
            return
        if self._on_change in self.sim.signal_hooks:
            self.sim.signal_hooks.remove(self._on_change)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "VcdWriter":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ---------------------------------------------------------
    def _write_header(self) -> None:
        out = self._handle
        out.write("$date CASTANET reproduction $end\n")
        out.write(f"$timescale {self._timescale} $end\n")
        out.write("$scope module top $end\n")
        for signal in self.signals:
            width = 1 if signal.width is None else signal.width
            ident = self._ids[id(signal)]
            name = signal.name.replace(" ", "_")
            out.write(f"$var wire {width} {ident} {name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        out.write("$dumpvars\n")
        for signal in self.signals:
            out.write(self._format(signal))
        out.write("$end\n")
        self._last_dumped_time = None

    def _format(self, signal: Signal) -> str:
        ident = self._ids[id(signal)]
        if signal.width is None:
            value = signal.value.lower() if signal.value in "UXZWLH-" \
                else signal.value
            return f"{self._vcd_scalar(signal.value)}{ident}\n"
        bits = "".join(self._vcd_bit(b) for b in signal.value)
        return f"b{bits} {ident}\n"

    @staticmethod
    def _vcd_bit(bit: str) -> str:
        if bit in "01":
            return bit
        if bit in "Zz":
            return "z"
        return "x"

    @staticmethod
    def _vcd_scalar(bit: str) -> str:
        if bit in "01":
            return bit
        if bit in "Zz":
            return "z"
        return "x"

    def _on_change(self, signal: Signal) -> None:
        if id(signal) not in self._ids or self._handle is None:
            return
        if self._last_dumped_time != self.sim.now:
            self._handle.write(f"#{self.sim.now}\n")
            self._last_dumped_time = self.sim.now
        self._handle.write(self._format(signal))
        self.changes_written += 1
