"""E4 — hardware in the simulation loop (paper §3.3, Figures 2 & 5).

Claims reproduced:

* the real-time verification process alternates software and hardware
  activity cycles; the duration of a hardware test cycle is bounded by
  the board's memory configuration;
* longer hardware activity cycles amortise the SW-activity (SCSI
  download/upload + host) overhead — the effective DUT clock rate
  climbs towards the 20 MHz board clock as cycle duration grows;
* the Figure-5 configuration data set correctly maps logical ports
  onto byte lanes in both directions, including bidirectional ports.
"""

import pytest

from repro.analysis import ExperimentResult, format_table
from repro.atm import AtmCell
from repro.board import (ConfigurationDataSet, CtrlPortMapping,
                         HardwareTestBoard, IoPortMapping, LoopbackDevice,
                         PinSegment, PortMapping)
from repro.core import BoardInterfaceModel, cell_stream_pin_config

from .common import save_table, scaled

CYCLE_LENGTHS = (64, 256, 1024, 4096, 16384)


def loopback_board(memory_depth=1 << 17):
    config = ConfigurationDataSet()
    config.add_inport(PortMapping(0, 8, (PinSegment(0, 7, 8),)))
    config.add_outport(PortMapping(0, 8, (PinSegment(0, 7, 8),)))
    config.add_ctrlport(CtrlPortMapping(0, 1, (PinSegment(15, 0, 1),)))
    config.add_io_port(IoPortMapping(0, 0, 0))
    return HardwareTestBoard(config, memory_depth=memory_depth)


def test_e4_cycle_duration_sweep(benchmark):
    """Effective clock rate vs hardware test-cycle duration."""
    rows = []
    rates = []
    for clocks in CYCLE_LENGTHS:
        board = loopback_board()
        result = board.run_test_cycle(LoopbackDevice(),
                                      [{0: i % 256} for i in range(clocks)])
        stats = result.stats
        rates.append(stats.effective_clock_hz)
        rows.append(ExperimentResult(f"{clocks} clocks/cycle", {
            "hw_time_ms": stats.hw_time * 1e3,
            "sw_time_ms": (stats.sw_load_time + stats.sw_read_time
                           + stats.sw_overhead_time) * 1e3,
            "effective_MHz": stats.effective_clock_hz / 1e6,
            "hw_utilization": stats.hw_utilization,
        }))
    save_table("e4_cycle_sweep.txt", format_table(
        "E4a: effective DUT clock vs test-cycle duration (board 20 MHz)",
        ["hw_time_ms", "sw_time_ms", "effective_MHz", "hw_utilization"],
        rows))
    # monotone amortisation, approaching the board clock
    assert rates == sorted(rates)
    assert rates[-1] > 10 * rates[0]
    assert rates[-1] < 20e6

    benchmark.pedantic(
        lambda: loopback_board().run_test_cycle(
            LoopbackDevice(), [{0: 0}] * 1024),
        rounds=1, iterations=1)


def test_e4_memory_bounds_cycle_duration(benchmark):
    """Test cycle durations are limited by the memory configuration."""
    from repro.board import BoardError
    board = loopback_board(memory_depth=256)

    def run_once():
        with pytest.raises(BoardError):
            board.load_port_vectors([{0: 0}] * 257)
        board.load_port_vectors([{0: 0}] * 256)
        return board.run_hardware_cycle(LoopbackDevice())

    hw_time = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert hw_time == pytest.approx(256 / board.clock_hz)


def test_e4_bidirectional_port_round_trip(benchmark):
    """I/O ports: the direction control (read/write flags) lets one
    byte lane carry stimulus and response alternately."""
    board = loopback_board()
    device = LoopbackDevice(latency=1)

    def run_once():
        # write phase (ctrl=1 means board drives), then read back
        vectors = [{0: value} for value in (0x11, 0x22, 0x33)]
        ctrl = [{0: 1}, {0: 1}, {0: 0}]
        result = board.run_test_cycle(device, vectors, ctrl=ctrl)
        return [frame[0] for frame in result.responses]

    echoed = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert echoed == [0, 0x11, 0x22]  # latency-1 echo through the lane


def test_e4_cell_stream_through_board_with_gating(benchmark):
    """The CASTANET board interface sweep: clock gating stretches the
    stimulus, trading wall-clock for slower DUT interfaces."""
    cells = scaled(12)
    rows = []
    for gating in (1, 2, 4):
        board = HardwareTestBoard(cell_stream_pin_config(),
                                  memory_depth=1 << 17)
        device = LoopbackDevice()
        interface = BoardInterfaceModel(board, device,
                                        cycle_clocks=2048,
                                        clock_gating=gating)
        for i in range(cells):
            interface.queue_cell(AtmCell.with_payload(1, 100, [i % 256]))
        interface.flush()
        rows.append(ExperimentResult(f"gating={gating}", {
            "board_clocks": sum(s.clocks for s in interface.cycle_stats),
            "wall_ms": interface.total_wall_time() * 1e3,
            "effective_MHz": interface.effective_clock_hz() / 1e6,
        }))
    save_table("e4_clock_gating.txt", format_table(
        f"E4b: clock-gating factor vs board clocks for {cells} cells",
        ["board_clocks", "wall_ms", "effective_MHz"], rows))
    assert rows[2]["board_clocks"] > 3 * rows[0]["board_clocks"]
    benchmark.pedantic(lambda: cell_stream_pin_config(), rounds=1,
                       iterations=1)
