"""RTL HEC generator and checker.

Byte-serial CRC-8 circuits over the ATM header, matching the reference
implementation in :mod:`repro.atm.hec` bit for bit (a co-verification
test in ``tests/rtl`` checks them against each other, which is exactly
the paper's reference-model-vs-DUT methodology at unit scale).
"""

from __future__ import annotations

from typing import Optional

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .component import Component

__all__ = ["HecGenerator", "HecChecker", "crc8_step"]

_POLY = 0x07
_COSET = 0x55


def crc8_step(crc: int, byte: int) -> int:
    """One byte-serial CRC-8 update step (the combinational core)."""
    crc ^= byte
    for _ in range(8):
        if crc & 0x80:
            crc = ((crc << 1) ^ _POLY) & 0xFF
        else:
            crc = (crc << 1) & 0xFF
    return crc


class HecGenerator(Component):
    """Computes the HEC octet for the 4 header octets of a cell.

    Ports:
        d[7:0], d_valid — header octet stream.
        sof — assert together with the first header octet.
        hec[7:0], hec_valid — result, pulsed one clock after the
            fourth octet was accepted.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        self.d = self.signal("d", width=8, init=0)
        self.d_valid = self.signal("d_valid", init="0")
        self.sof = self.signal("sof", init="0")
        self.hec = self.signal("hec", width=8, init=0)
        self.hec_valid = self.signal("hec_valid", init="0")
        self._crc = 0
        self._count = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    def _tick(self) -> None:
        self.hec_valid.drive("0")
        if self.d_valid.value != "1":
            return
        if self.sof.value == "1":
            self._crc = 0
            self._count = 0
        if self._count >= 4:
            return
        self._crc = crc8_step(self._crc, vector_to_int(self.d.value))
        self._count += 1
        if self._count == 4:
            self.hec.drive(self._crc ^ _COSET)
            self.hec_valid.drive("1")

    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick`."""
        d = ctx.read(self.d)
        d_valid = ctx.read(self.d_valid)
        sof = ctx.read(self.sof)
        w_hec = ctx.write(self.hec)
        w_hec_valid = ctx.write(self.hec_valid)

        def evaluate():
            w_hec_valid("0")
            if d_valid.value != "1":
                return
            if sof.value == "1":
                self._crc = 0
                self._count = 0
            if self._count >= 4:
                return
            self._crc = crc8_step(self._crc, slot_int(d.value))
            self._count += 1
            if self._count == 4:
                w_hec(self._crc ^ _COSET)
                w_hec_valid("1")

        return evaluate


class HecChecker(Component):
    """Checks the HEC of a 5-octet header stream.

    Ports:
        d[7:0], d_valid, sof — octet stream (sof with octet 0).
        ok, err — one-clock pulses after the fifth octet: exactly one
            of them fires.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        self.d = self.signal("d", width=8, init=0)
        self.d_valid = self.signal("d_valid", init="0")
        self.sof = self.signal("sof", init="0")
        self.ok = self.signal("ok", init="0")
        self.err = self.signal("err", init="0")
        self._crc = 0
        self._count = 0
        self.headers_checked = 0
        self.errors_seen = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    def _tick(self) -> None:
        self.ok.drive("0")
        self.err.drive("0")
        if self.d_valid.value != "1":
            return
        if self.sof.value == "1":
            self._crc = 0
            self._count = 0
        if self._count >= 5:
            return
        octet = vector_to_int(self.d.value)
        if self._count < 4:
            self._crc = crc8_step(self._crc, octet)
        else:
            self.headers_checked += 1
            if (self._crc ^ _COSET) == octet:
                self.ok.drive("1")
            else:
                self.errors_seen += 1
                self.err.drive("1")
        self._count += 1

    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick`."""
        d = ctx.read(self.d)
        d_valid = ctx.read(self.d_valid)
        sof = ctx.read(self.sof)
        w_ok = ctx.write(self.ok)
        w_err = ctx.write(self.err)

        def evaluate():
            w_ok("0")
            w_err("0")
            if d_valid.value != "1":
                return
            if sof.value == "1":
                self._crc = 0
                self._count = 0
            if self._count >= 5:
                return
            octet = slot_int(d.value)
            if self._count < 4:
                self._crc = crc8_step(self._crc, octet)
            else:
                self.headers_checked += 1
                if (self._crc ^ _COSET) == octet:
                    w_ok("1")
                else:
                    self.errors_seen += 1
                    w_err("1")
            self._count += 1

        return evaluate
