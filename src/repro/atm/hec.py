"""Header Error Control (HEC) computation.

ITU-T I.432 protects the first four octets of the ATM cell header with
a CRC-8 over generator polynomial x^8 + x^2 + x + 1 (0x07), XORed with
the coset leader 0x55 to improve delineation robustness.  The same
algorithm is implemented twice in this repository: here (reference,
byte-at-a-time) and as a bit-serial RTL circuit in
:mod:`repro.rtl.hec_circuit`; E5-style tests check them against each
other.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["crc8", "hec_octet", "check_hec", "HEC_POLY", "HEC_COSET"]

HEC_POLY = 0x07
HEC_COSET = 0x55


def _build_table() -> list:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ HEC_POLY) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
        table.append(crc)
    return table


_CRC_TABLE = _build_table()


def crc8(data: Sequence[int]) -> int:
    """CRC-8 (poly 0x07, init 0) over *data* bytes, MSB first."""
    crc = 0
    for byte in data:
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"byte value {byte} out of range")
        crc = _CRC_TABLE[(crc ^ byte) & 0xFF]
    return crc


def hec_octet(header4: Sequence[int]) -> int:
    """HEC octet for the first four header octets (CRC-8 XOR 0x55)."""
    if len(header4) != 4:
        raise ValueError(
            f"HEC covers exactly 4 header octets, got {len(header4)}")
    return crc8(header4) ^ HEC_COSET


def check_hec(header5: Sequence[int]) -> bool:
    """True when the 5-octet header carries a consistent HEC."""
    if len(header5) != 5:
        raise ValueError(
            f"an ATM header is 5 octets, got {len(header5)}")
    return hec_octet(header5[:4]) == header5[4]
