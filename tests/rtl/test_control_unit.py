"""Tests for the RTL global control unit (lookup server + arbiter)."""

import pytest

from repro.hdl import RisingEdge, Simulator
from repro.rtl import GlobalControlUnitRtl


def make_gcu(num_clients=4, lookup_latency=4):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    gcu = GlobalControlUnitRtl(sim, "gcu", clk, num_clients=num_clients,
                               lookup_latency=lookup_latency)
    return sim, clk, gcu


def request(sim, clk, client, vpi, vci, timeout_clocks=200):
    """Issue one lookup through *client* and wait for done."""
    result = {}

    def gen():
        client.vpi_in.drive(vpi)
        client.vci_in.drive(vci)
        client.req.drive("1")
        while True:
            yield RisingEdge(clk)
            if client.done.value == "1":
                break
        client.req.drive("0")
        result["found"] = client.found.value == "1"
        if result["found"]:
            result["out"] = (client.out_port.as_int(),
                             client.out_vpi.as_int(),
                             client.out_vci.as_int())

    sim.add_generator("requester", gen())
    sim.run_for(10 * timeout_clocks)
    return result


def test_lookup_hit():
    sim, clk, gcu = make_gcu()
    gcu.install(0, 1, 100, 3, 2, 200)
    result = request(sim, clk, gcu.clients[0], 1, 100)
    assert result["found"]
    assert result["out"] == (3, 2, 200)
    assert gcu.lookups_served == 1


def test_lookup_miss():
    sim, clk, gcu = make_gcu()
    result = request(sim, clk, gcu.clients[0], 9, 999)
    assert result == {"found": False}
    assert gcu.lookup_misses == 1


def test_lookup_latency_respected():
    sim, clk, gcu = make_gcu(lookup_latency=6)
    gcu.install(0, 1, 1, 0, 0, 0)
    client = gcu.clients[0]
    done_at = {}

    def gen():
        client.vpi_in.drive(1)
        client.vci_in.drive(1)
        client.req.drive("1")
        start = sim.now
        while True:
            yield RisingEdge(clk)
            if client.done.value == "1":
                done_at["clocks"] = (sim.now - start) // 10
                client.req.drive("0")
                return

    sim.add_generator("req", gen())
    sim.run_for(10 * 100)
    assert done_at["clocks"] >= 6


def test_round_robin_serves_all_clients():
    sim, clk, gcu = make_gcu(num_clients=3, lookup_latency=2)
    for i in range(3):
        gcu.install(i, 1, i, i, 1, i)
    served = []

    def make_requester(index):
        client = gcu.clients[index]

        def gen():
            client.vpi_in.drive(1)
            client.vci_in.drive(index)
            client.req.drive("1")
            while True:
                yield RisingEdge(clk)
                if client.done.value == "1":
                    served.append(index)
                    client.req.drive("0")
                    return

        return gen

    for i in range(3):
        sim.add_generator(f"req{i}", make_requester(i)())
    sim.run_for(10 * 100)
    assert sorted(served) == [0, 1, 2]
    assert gcu.lookups_served == 3


def test_client_isolation():
    """The same (vpi, vci) on different clients resolves separately."""
    sim, clk, gcu = make_gcu()
    gcu.install(0, 1, 100, 5, 0, 0)
    result = request(sim, clk, gcu.clients[1], 1, 100)
    assert result == {"found": False}


def test_remove_entry():
    sim, clk, gcu = make_gcu()
    gcu.install(0, 1, 100, 3, 2, 200)
    gcu.remove(0, 1, 100)
    assert gcu.table_size == 0
    result = request(sim, clk, gcu.clients[0], 1, 100)
    assert result == {"found": False}


def test_busy_and_idle_cycles_accounted():
    sim, clk, gcu = make_gcu(lookup_latency=4)
    gcu.install(0, 1, 1, 0, 0, 0)
    request(sim, clk, gcu.clients[0], 1, 1, timeout_clocks=50)
    assert gcu.busy_cycles >= 4
    assert gcu.idle_cycles > 0


def test_invalid_configuration():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    with pytest.raises(ValueError):
        GlobalControlUnitRtl(sim, "g", clk, num_clients=0)
    with pytest.raises(ValueError):
        GlobalControlUnitRtl(sim, "g", clk, lookup_latency=0)
