"""Frame transports between the coordinator and shard processes.

The sharded co-simulation couples one coordinator process to N shard
worker processes; every coupling is a sequence of *frames* (``(kind,
payload)`` tuples, see :mod:`repro.shard.protocol`) flowing over a
:class:`Transport`.  Every transport speaks the same **binary codec**
(:mod:`repro.shard.codec`): struct-packed frame headers, columnar op
payloads, and a safe value codec for control frames — **nothing on
the wire is ever pickled or unpickled**, so a crafted byte stream can
at worst raise :class:`~repro.shard.codec.CodecError`, never execute
code.  Three concrete transports exist:

* :class:`PipeTransport` — a :func:`multiprocessing.Pipe` connection
  carrying raw codec frames (``send_bytes``/``recv_bytes_into`` on a
  reusable buffer); the default.
* :class:`SocketTransport` — codec frames over a TCP socket
  (``recv_into`` on a preallocated buffer, ``TCP_NODELAY``); the
  transport a multi-host deployment keeps.
* :class:`ShmRingTransport` — same-host shared-memory ring buffers
  (:mod:`multiprocessing.shared_memory`) with event-based wakeup: one
  single-producer/single-consumer ring per direction, frames land in
  the peer's address space without a per-frame syscall-sized copy
  chain.  Build a coupling with :func:`shm_ring_pair`; the worker
  attaches via :meth:`ShmRingTransport.attach`.

All transports raise :class:`TransportClosed` on EOF — a shard
process dying mid-exchange surfaces as a precise, catchable signal
rather than a hung ``recv`` — and count frames *and octets* both ways
(:meth:`Transport.stats`).  Decoded ``ops``/``ack`` frames alias the
transport's receive buffer: they are valid until the next ``recv``.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import select
import socket
import struct
from typing import Any, Callable, Dict, Optional, Tuple

from . import codec
from .codec import CodecError

__all__ = ["Transport", "PipeTransport", "SocketTransport",
           "ShmRingTransport", "shm_ring_pair",
           "TransportError", "TransportClosed", "open_listener",
           "accept_transport", "connect_transport"]

#: initial receive-buffer size; grows geometrically to the largest
#: frame seen so steady state is allocation-free
_INITIAL_BUF = 64 * 1024


class TransportError(RuntimeError):
    """Base error for transport-level failures."""


class TransportClosed(TransportError):
    """The peer end closed (EOF) — raised by ``recv``/``send`` when the
    other side of the coupling is gone.

    An EOF that lands *mid-frame* (the header or payload was cut
    short) is reported with the partial octet count, which is the
    signature of a shard process dying inside an exchange.
    """


class Transport(abc.ABC):
    """One bidirectional frame stream to a peer process.

    Counts every frame in :attr:`frames_sent` / :attr:`frames_received`
    and every wire octet in :attr:`bytes_sent` /
    :attr:`bytes_received` — the per-shard exchange metrics the
    coordinator aggregates into its report (octets measure the codec's
    framing efficiency: bytes/frame and bytes/cell in
    ``BENCH_shard.json``).
    """

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False
        self._buf = bytearray(_INITIAL_BUF)
        self._view = memoryview(self._buf)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def stats(self) -> Dict[str, int]:
        """Frame and octet counters as a plain dict (for snapshots)."""
        return {"frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received}

    def _reserve(self, size: int) -> memoryview:
        """A view of at least *size* octets over the reusable receive
        buffer (grown geometrically, so steady state never
        allocates)."""
        if size > len(self._buf):
            grown = max(size, 2 * len(self._buf))
            self._view.release()
            self._buf = bytearray(grown)
            self._view = memoryview(self._buf)
        return self._view

    @abc.abstractmethod
    def send(self, frame: Any) -> None:
        """Encode and ship one ``(kind, payload)`` frame."""

    @abc.abstractmethod
    def recv(self) -> Any:
        """Block for the next frame; :class:`TransportClosed` on EOF.

        The returned ``ops``/``ack`` payload views alias this
        transport's receive buffer — valid until the next ``recv``.
        """

    @abc.abstractmethod
    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame is ready within *timeout* seconds."""

    @abc.abstractmethod
    def close(self) -> None:
        """Close this end (idempotent)."""


class PipeTransport(Transport):
    """Codec frames over a :func:`multiprocessing.Pipe` connection.

    The connection carries the already-encoded frame bytes
    (``send_bytes``), never pickles, and receives into the reusable
    buffer (``recv_bytes_into``) — the cheapest coupling on one host,
    and the only one whose endpoints a forked/spawned child inherits
    directly as a process argument.
    """

    def __init__(self, conn) -> None:
        super().__init__()
        self.conn = conn

    def send(self, frame: Any) -> None:
        """Encode and ship one frame; :class:`TransportClosed` on a
        broken pipe."""
        data = codec.encode_frame(frame)
        try:
            self.conn.send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise TransportClosed(f"pipe peer is gone: {exc}") from exc
        self.frames_sent += 1
        self.bytes_sent += len(data)

    def recv(self) -> Any:
        """Block for the next frame; :class:`TransportClosed` on EOF."""
        try:
            try:
                size = self.conn.recv_bytes_into(self._buf)
                view = self._view[:size]
            except multiprocessing.BufferTooShort as exc:
                # The exception delivers the whole message — grow the
                # buffer for next time and decode this one from it.
                data = exc.args[0]
                self._reserve(len(data))
                self._buf[:len(data)] = data
                view = self._view[:len(data)]
        except EOFError as exc:
            raise TransportClosed("pipe closed by peer (EOF)") from exc
        except OSError as exc:
            raise TransportClosed(f"pipe error: {exc}") from exc
        frame = codec.decode_frame(view)
        self.frames_received += 1
        self.bytes_received += len(view)
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame is ready within *timeout* seconds."""
        return self.conn.poll(timeout)

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if not self._closed:
            self._closed = True
            self.conn.close()


class SocketTransport(Transport):
    """Codec frames over a connected TCP socket.

    Wire format: the codec's 8-octet header followed by the payload —
    the classic transaction-pipe framing, now self-describing.
    ``recv`` reads the header, validates it (anything that is not a
    codec frame — a pickle, noise — raises
    :class:`~repro.shard.codec.CodecError` before a single payload
    octet is interpreted), then ``recv_into``\\ s the payload directly
    into the reusable buffer; an EOF inside either part raises
    :class:`TransportClosed` naming how many octets arrived.
    """

    def __init__(self, sock: socket.socket) -> None:
        super().__init__()
        self.sock = sock
        self._header = bytearray(codec.HEADER_OCTETS)
        self._header_view = memoryview(self._header)
        # Latency matters more than throughput for sync exchanges.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets
            pass

    def send(self, frame: Any) -> None:
        """Encode and ship one frame; :class:`TransportClosed` on a
        dead socket."""
        data = codec.encode_frame(frame)
        try:
            self.sock.sendall(data)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise TransportClosed(f"socket peer is gone: {exc}") from exc
        self.frames_sent += 1
        self.bytes_sent += len(data)

    def _recv_into_exact(self, view: memoryview, context: str) -> None:
        """Fill *view* exactly or raise :class:`TransportClosed`
        reporting the partial read (*context* names the frame part)."""
        need = len(view)
        got = 0
        while got < need:
            try:
                count = self.sock.recv_into(view[got:])
            except (ConnectionError, OSError) as exc:
                raise TransportClosed(
                    f"socket error reading {context}: {exc}") from exc
            if count == 0:
                raise TransportClosed(
                    f"socket EOF mid-frame: got {got}/{need} bytes of "
                    f"the {context}")
            got += count

    def recv(self) -> Any:
        """Block for one whole frame; :class:`TransportClosed` on EOF
        (including an EOF that truncates the frame),
        :class:`~repro.shard.codec.CodecError` on a non-codec byte
        stream."""
        self._recv_into_exact(self._header_view, "frame header")
        kind_code, payload_len = codec.parse_header(self._header_view)
        view = self._reserve(payload_len)[:payload_len]
        if payload_len:
            self._recv_into_exact(view, "payload")
        frame = codec.decode_payload(kind_code, view)
        self.frames_received += 1
        self.bytes_received += codec.HEADER_OCTETS + payload_len
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        """True when at least part of a frame is readable."""
        ready, _, _ = select.select([self.sock], [], [], timeout)
        return bool(ready)

    def close(self) -> None:
        """Shut down and close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


# ----------------------------------------------------------------------
# Shared-memory ring transport
# ----------------------------------------------------------------------
#: per-ring control block: u64 write total, u64 read total, u8 closed
_RING_HEAD = 0
_RING_TAIL = 8
_RING_CLOSED = 16
_RING_DATA = 32  # data area start (keeps counters on their own line)
_COUNTER = struct.Struct("<Q")

#: default ring capacity per direction
DEFAULT_RING_CAPACITY = 1 << 20

#: event-wait slice while also watching for peer death
_WAIT_SLICE_S = 0.1


class _Ring:
    """One single-producer/single-consumer byte ring in shared memory.

    The writer owns the head counter, the reader owns the tail; both
    are monotonically increasing totals, so ``head - tail`` is the
    unread span and wraparound is plain modulo arithmetic.  Two events
    carry the wakeups: the writer sets *data_event* after publishing,
    the reader sets *space_event* after consuming.  A ``closed`` octet
    lets either side turn the peer's next blocking wait into a clean
    :class:`TransportClosed`.
    """

    __slots__ = ("shm", "buf", "capacity", "data_event", "space_event")

    def __init__(self, shm, capacity: int, data_event,
                 space_event) -> None:
        self.shm = shm
        self.buf = shm.buf
        self.capacity = capacity
        self.data_event = data_event
        self.space_event = space_event

    # counters -------------------------------------------------------
    def _head(self) -> int:
        return _COUNTER.unpack_from(self.buf, _RING_HEAD)[0]

    def _tail(self) -> int:
        return _COUNTER.unpack_from(self.buf, _RING_TAIL)[0]

    @property
    def readable(self) -> int:
        """Unread octets currently in the ring."""
        return self._head() - self._tail()

    @property
    def peer_closed(self) -> bool:
        """True once the other side marked the ring closed."""
        return self.buf[_RING_CLOSED] != 0

    def mark_closed(self) -> None:
        """Mark this ring closed and wake both directions."""
        try:
            self.buf[_RING_CLOSED] = 1
        except ValueError:  # pragma: no cover - shm already unmapped
            return
        self.data_event.set()
        self.space_event.set()

    # blocking byte I/O ----------------------------------------------
    def write(self, data, peer_alive: Optional[Callable[[], bool]]
              ) -> None:
        """Append *data* (streaming: frames larger than the ring
        trickle through as the reader drains)."""
        view = data if isinstance(data, memoryview) else memoryview(data)
        capacity = self.capacity
        sent = 0
        while sent < len(view):
            head = self._head()
            free = capacity - (head - self._tail())
            if free == 0:
                if self.peer_closed:
                    raise TransportClosed(
                        "shm ring closed by peer while a frame was "
                        "being written")
                self.space_event.clear()
                if capacity - (head - self._tail()) == 0:
                    if peer_alive is not None and not peer_alive():
                        raise TransportClosed(
                            "shm peer process died while a frame was "
                            "being written")
                    self.space_event.wait(_WAIT_SLICE_S)
                continue
            chunk = min(free, len(view) - sent)
            at = head % capacity
            first = min(chunk, capacity - at)
            data_at = _RING_DATA + at
            self.buf[data_at:data_at + first] = view[sent:sent + first]
            if chunk > first:
                self.buf[_RING_DATA:_RING_DATA + chunk - first] = \
                    view[sent + first:sent + chunk]
            sent += chunk
            _COUNTER.pack_into(self.buf, _RING_HEAD, head + chunk)
            self.data_event.set()

    def read_into(self, view: memoryview,
                  peer_alive: Optional[Callable[[], bool]],
                  context: str) -> None:
        """Fill *view* exactly; :class:`TransportClosed` when the peer
        closed (or died) before enough octets arrived."""
        capacity = self.capacity
        need = len(view)
        got = 0
        while got < need:
            tail = self._tail()
            avail = self._head() - tail
            if avail == 0:
                if self.peer_closed and self._head() == tail:
                    raise TransportClosed(
                        f"shm ring closed by peer: got {got}/{need} "
                        f"bytes of the {context}")
                self.data_event.clear()
                if self._head() == tail:
                    if not self.peer_closed and peer_alive is not None \
                            and not peer_alive():
                        raise TransportClosed(
                            f"shm peer process died: got {got}/{need} "
                            f"bytes of the {context}")
                    self.data_event.wait(_WAIT_SLICE_S)
                continue
            chunk = min(avail, need - got)
            at = tail % capacity
            first = min(chunk, capacity - at)
            data_at = _RING_DATA + at
            view[got:got + first] = self.buf[data_at:data_at + first]
            if chunk > first:
                view[got + first:got + chunk] = \
                    self.buf[_RING_DATA:_RING_DATA + chunk - first]
            got += chunk
            _COUNTER.pack_into(self.buf, _RING_TAIL, tail + chunk)
            self.space_event.set()

    def release(self) -> None:
        """Drop the buffer references so the mapping can be closed."""
        self.buf = None
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass


def _attach_shm(name: str):
    """Attach an existing shared-memory block without letting this
    process's resource tracker claim (and later double-unlink) it —
    the creator owns the lifetime.

    Registration is suppressed for the duration of the attach (rather
    than unregistered afterwards) because a forked worker shares the
    parent's tracker process: an unregister from here would strip the
    *creator's* registration and turn its eventual ``unlink`` into a
    tracker error.
    """
    from multiprocessing import resource_tracker, shared_memory
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmRingTransport(Transport):
    """Codec frames over a pair of shared-memory rings (same host).

    One ring per direction, event-based wakeup, streaming writes (a
    frame larger than the ring capacity trickles through) — the
    same-host transport with no per-frame socket syscalls.  The
    coordinator side is built by :func:`shm_ring_pair`, which also
    returns the picklable descriptor a worker process turns back into
    its end with :meth:`attach`.

    *peer_alive* (optional) is polled while blocked so a peer that
    died without closing (crash mid-window) surfaces as
    :class:`TransportClosed` instead of a hang; worker sides default
    to watching for coordinator death via the parent pid.
    """

    def __init__(self, out_ring: _Ring, in_ring: _Ring,
                 peer_alive: Optional[Callable[[], bool]] = None,
                 owner: bool = False) -> None:
        super().__init__()
        self._out = out_ring
        self._in = in_ring
        self._peer_alive = peer_alive
        self._owner = owner
        self._header = bytearray(codec.HEADER_OCTETS)
        self._header_view = memoryview(self._header)

    @property
    def peer_alive(self) -> Optional[Callable[[], bool]]:
        """The liveness probe polled while blocked (settable once the
        owning process handle exists)."""
        return self._peer_alive

    @peer_alive.setter
    def peer_alive(self, probe: Optional[Callable[[], bool]]) -> None:
        self._peer_alive = probe

    @classmethod
    def attach(cls, descriptor: Dict[str, Any]) -> "ShmRingTransport":
        """The worker end of a :func:`shm_ring_pair` coupling.

        Directions swap (the coordinator's out-ring is the worker's
        in-ring); the default liveness probe watches for coordinator
        death via the parent pid re-parenting to init.
        """
        capacity = descriptor["capacity"]
        c2w = _Ring(_attach_shm(descriptor["c2w"]), capacity,
                    descriptor["c2w_data"], descriptor["c2w_space"])
        w2c = _Ring(_attach_shm(descriptor["w2c"]), capacity,
                    descriptor["w2c_data"], descriptor["w2c_space"])
        parent = os.getppid()

        def coordinator_alive() -> bool:
            return os.getppid() == parent

        return cls(out_ring=w2c, in_ring=c2w,
                   peer_alive=coordinator_alive)

    def send(self, frame: Any) -> None:
        """Encode and ship one frame through the outbound ring."""
        if self._closed:
            raise TransportClosed("shm transport already closed")
        data = codec.encode_frame(frame)
        self._out.write(data, self._peer_alive)
        self.frames_sent += 1
        self.bytes_sent += len(data)

    def recv(self) -> Any:
        """Block for one whole frame from the inbound ring;
        :class:`TransportClosed` when the peer closed or died."""
        if self._closed:
            raise TransportClosed("shm transport already closed")
        self._in.read_into(self._header_view, self._peer_alive,
                           "frame header")
        kind_code, payload_len = codec.parse_header(self._header_view)
        view = self._reserve(payload_len)[:payload_len]
        if payload_len:
            self._in.read_into(view, self._peer_alive, "payload")
        frame = codec.decode_payload(kind_code, view)
        self.frames_received += 1
        self.bytes_received += codec.HEADER_OCTETS + payload_len
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        """True when inbound octets are ready within *timeout*
        seconds."""
        if self._in.readable:
            return True
        if timeout <= 0:
            return False
        self._in.data_event.clear()
        if self._in.readable:
            return True
        self._in.data_event.wait(timeout)
        return self._in.readable > 0

    def close(self) -> None:
        """Mark both rings closed, wake the peer, release the
        mappings; the creating side also unlinks the segments
        (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for ring in (self._out, self._in):
            ring.mark_closed()
        for ring in (self._out, self._in):
            shm = ring.shm
            ring.release()
            if self._owner:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


def shm_ring_pair(ctx=None,
                  capacity: int = DEFAULT_RING_CAPACITY
                  ) -> Tuple[ShmRingTransport, Dict[str, Any]]:
    """Create one coordinator⇄worker shared-memory coupling.

    Returns ``(coordinator_transport, descriptor)``: the transport is
    the coordinator end; the *descriptor* (shared-memory names,
    capacity, and the four wakeup events) is picklable as a worker
    :class:`multiprocessing.Process` argument and becomes the worker
    end via :meth:`ShmRingTransport.attach`.  Set
    ``transport.peer_alive`` to the worker's liveness probe once the
    process handle exists.
    """
    import multiprocessing
    from multiprocessing import shared_memory
    if capacity < 1:
        raise ValueError(f"ring capacity must be positive, "
                         f"got {capacity}")
    if ctx is None:
        ctx = multiprocessing
    size = _RING_DATA + capacity
    shm_c2w = shared_memory.SharedMemory(create=True, size=size)
    shm_w2c = shared_memory.SharedMemory(create=True, size=size)
    for shm in (shm_c2w, shm_w2c):
        shm.buf[:_RING_DATA] = bytes(_RING_DATA)
    events = {key: ctx.Event() for key in
              ("c2w_data", "c2w_space", "w2c_data", "w2c_space")}
    descriptor = {"c2w": shm_c2w.name, "w2c": shm_w2c.name,
                  "capacity": capacity, **events}
    c2w = _Ring(shm_c2w, capacity, events["c2w_data"],
                events["c2w_space"])
    w2c = _Ring(shm_w2c, capacity, events["w2c_data"],
                events["w2c_space"])
    transport = ShmRingTransport(out_ring=c2w, in_ring=w2c,
                                 owner=True)
    return transport, descriptor


def open_listener(host: str = "127.0.0.1",
                  port: int = 0) -> Tuple[socket.socket,
                                          Tuple[str, int]]:
    """Open a listening TCP socket; returns ``(listener, address)``.

    ``port=0`` binds an ephemeral port — the returned address is what
    shard workers (or :class:`~repro.shard.service.ServeClient`)
    connect to.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen()
    return listener, listener.getsockname()[:2]


def accept_transport(listener: socket.socket,
                     timeout: Optional[float] = 30.0) -> SocketTransport:
    """Accept one peer connection as a :class:`SocketTransport`."""
    listener.settimeout(timeout)
    try:
        sock, _ = listener.accept()
    except socket.timeout as exc:
        raise TransportError(
            f"no shard connected within {timeout} s") from exc
    sock.settimeout(None)
    return SocketTransport(sock)


def connect_transport(address: Tuple[str, int],
                      timeout: Optional[float] = 30.0) -> SocketTransport:
    """Connect to *address* and wrap the socket as a transport."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise TransportError(
            f"cannot reach coordinator at {address}: {exc}") from exc
    sock.settimeout(None)
    return SocketTransport(sock)
