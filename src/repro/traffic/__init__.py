"""Traffic model library.

Stochastic sources (CBR, Poisson, on-off, MMPP), synthetic MPEG traces
and trace record/replay — the stimuli CASTANET reuses from the network
simulation environment as RTL and hardware test vectors.
"""

from .base import ArrivalProcess, TrafficSource, sample_arrivals
from .models import (ConstantBitRate, MarkovModulatedPoisson, OnOffSource,
                     PoissonArrivals)
from .mpeg import GOP_PATTERN, MpegCellArrivals, MpegTraceSynthesizer
from .selfsimilar import (ParetoOnOffSource, SelfSimilarAggregate,
                          hurst_from_shape, variance_time_slopes)
from .trace import Trace, TraceError, TraceReplayArrivals

__all__ = [
    "ArrivalProcess", "TrafficSource", "sample_arrivals",
    "ConstantBitRate", "MarkovModulatedPoisson", "OnOffSource",
    "PoissonArrivals",
    "GOP_PATTERN", "MpegCellArrivals", "MpegTraceSynthesizer",
    "ParetoOnOffSource", "SelfSimilarAggregate", "hurst_from_shape",
    "variance_time_slopes",
    "Trace", "TraceError", "TraceReplayArrivals",
]
