"""Per-process telemetry payloads for distributed co-simulation.

PRs 8–9 made the reproduction multi-process (shard workers over
pipe/socket/shm, the ``serve`` job service) while the ``repro.obs``
layer stayed strictly per-process — a sharded run was a telemetry
black hole.  This module defines the **shard telemetry payload**: one
plain-data dict per worker process carrying everything observability
knows about that process, shippable over the shard wire's tag codec
(:mod:`repro.shard.codec`) with no pickles:

* the :class:`~repro.obs.metrics.MetricsRegistry` snapshot
  (counters + histograms),
* the provenance span stream (one record per recorded hop, shard-
  attributed, both time domains where known),
* **coverage counters** — FSM states visited, sync-window occupancy,
  per-hop latency tail buckets, residual backlogs — the feedback
  signal the ROADMAP's coverage-driven scenario generator will
  consume.

Everything here is *plain data in, plain data out*: no import of
``repro.core`` or ``repro.shard`` (the shard layer imports us, not
the other way round), so the payloads merge (:mod:`repro.obs.merge`)
and export (:mod:`repro.obs.chrome`) without any live simulator
objects.  The SCE-MI reference (PAPERS.md) routes channel telemetry
through the same transaction pipes as the data; this is that shape —
telemetry rides the existing binary wire, aggregation is a subsystem.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

__all__ = ["TELEMETRY_SCHEMA", "spans_from_tracker", "fsm_coverage",
           "hop_tail_coverage", "sync_window_coverage",
           "residual_backlog", "coverage_snapshot", "build_telemetry"]

#: payload schema version (bumped on incompatible shape changes)
TELEMETRY_SCHEMA = 1

#: registry prefix of the per-hop provenance latency histograms
_HOP_PREFIX = "prov.hop_s."


def spans_from_tracker(tracker, shard: Optional[str] = None
                       ) -> List[Dict[str, Any]]:
    """Flatten a :class:`~repro.obs.provenance.ProvenanceTracker`'s
    recorded journeys into one span-record list.

    Each record is ``{"ev": "span", "cell": tid, "hop": name}`` plus
    ``t``/``hdl_s`` where stamped and the ``shard`` attribution — the
    same shape the trace stream uses, so merged span lists feed the
    Chrome exporter directly.
    """
    spans: List[Dict[str, Any]] = []
    for tid, journey in tracker.journeys().items():
        for hop, (t, hdl_s) in journey.items():
            record: Dict[str, Any] = {"ev": "span", "cell": tid,
                                      "hop": hop}
            if t is not None:
                record["t"] = t
            if hdl_s is not None:
                record["hdl_s"] = hdl_s
            if shard is not None:
                record["shard"] = shard
            spans.append(record)
    return spans


def fsm_coverage(network) -> Dict[str, Dict[str, Any]]:
    """FSM state coverage of every process model in *network*.

    Walks the network's nodes and modules duck-typed (any module
    exposing a ``process`` with ``states_visited`` counts) and
    returns ``{process_name: {"visited": [...], "states": N,
    "fraction": visited/N}}``.
    """
    coverage: Dict[str, Dict[str, Any]] = {}
    for node in getattr(network, "nodes", {}).values():
        for module in getattr(node, "modules", {}).values():
            process = getattr(module, "process", None)
            visited = getattr(process, "states_visited", None)
            if visited is None:
                continue
            names = (process.state_names()
                     if hasattr(process, "state_names") else [])
            total = len(names)
            coverage[process.name] = {
                "visited": sorted(visited),
                "states": total,
                "fraction": (len(visited) / total if total else 0.0),
            }
    return coverage


def hop_tail_coverage(instruments: Optional[Dict[str, Any]]
                      ) -> Dict[str, Dict[str, Any]]:
    """Per-hop latency tail buckets from a registry snapshot.

    Filters the ``prov.hop_s.<from>_to_<to>`` histograms out of an
    ``instruments`` snapshot and keeps the tail view a scenario
    generator steers by: sample count, p50/p99/max, and every bucket
    at or above the median (``tail``).
    """
    coverage: Dict[str, Dict[str, Any]] = {}
    if not instruments:
        return coverage
    for name, hist in instruments.get("histograms", {}).items():
        if not name.startswith(_HOP_PREFIX):
            continue
        p50 = hist.get("p50")
        tail = [bucket for bucket in hist.get("buckets", [])
                if p50 is None or bucket["le"] == "inf"
                or bucket["le"] >= p50]
        coverage[name[len(_HOP_PREFIX):]] = {
            "count": hist.get("count", 0),
            "p50": p50,
            "p99": hist.get("p99"),
            "max": hist.get("max"),
            "tail": tail,
        }
    return coverage


def sync_window_coverage(totals: Optional[Dict[str, int]]
                         ) -> Dict[str, Any]:
    """Sync-window occupancy from aggregated synchroniser totals
    (``messages_posted``/``windows_granted``/null counts): how full
    the conservative protocol's windows actually ran."""
    totals = dict(totals or {})
    granted = int(totals.get("windows_granted", 0))
    posted = int(totals.get("messages_posted", 0))
    totals["messages_per_window"] = (posted / granted if granted
                                     else 0.0)
    return totals


def residual_backlog(entity_snapshots: Iterable[Dict[str, Any]]
                     ) -> Dict[str, Any]:
    """Undrained work left in the per-entity send paths (cells still
    queued behind the waveform sender when the run settled)."""
    per_entity: List[int] = []
    for snapshot in entity_snapshots:
        per_entity.append(int(snapshot.get("sender_backlog", 0)))
    return {"total": sum(per_entity), "per_entity": per_entity}


def coverage_snapshot(network=None,
                      instruments: Optional[Dict[str, Any]] = None,
                      sync: Optional[Dict[str, int]] = None,
                      entities: Iterable[Dict[str, Any]] = ()
                      ) -> Dict[str, Any]:
    """The full coverage-counter block of one telemetry payload."""
    return {
        "fsm_states": fsm_coverage(network) if network is not None
        else {},
        "sync_windows": sync_window_coverage(sync),
        "hop_latency_tail": hop_tail_coverage(instruments),
        "residual_backlog": residual_backlog(entities),
    }


def build_telemetry(shard: str, env, level: Optional[str] = None,
                    sync: Optional[Dict[str, int]] = None,
                    entities: Optional[List[Dict[str, Any]]] = None
                    ) -> Dict[str, Any]:
    """One process's complete telemetry payload.

    *env* is duck-typed (anything with ``metrics_registry`` /
    ``provenance`` / ``trace`` / ``network`` attributes — in practice
    a :class:`~repro.core.CoVerificationEnvironment`); the result is
    plain data, safe for the shard wire's tag codec and for
    :func:`repro.obs.merge.merge_telemetry`.
    """
    registry = getattr(env, "metrics_registry", None)
    instruments = (registry.snapshot()
                   if registry is not None and registry.enabled
                   else {"counters": {}, "histograms": {}})
    tracker = getattr(env, "provenance", None)
    trace = getattr(env, "trace", None)
    entities = list(entities or [])
    payload: Dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "shard": shard,
        "level": level,
        "instruments": instruments,
        "provenance": (tracker.stats_snapshot()
                       if tracker is not None else None),
        "spans": (spans_from_tracker(tracker, shard=shard)
                  if tracker is not None else []),
        "trace_records": trace.emitted if trace is not None else 0,
        "coverage": coverage_snapshot(
            network=getattr(env, "network", None),
            instruments=instruments, sync=sync, entities=entities),
    }
    return payload
