"""Unit tests for the HDL kernel: delta cycles, processes, clocks."""

import pytest

from repro.hdl import (CombinationalLoopError, DriveError, FallingEdge,
                       RisingEdge, SimulationError, Simulator)


class TestSignals:
    def test_initial_value_default_u(self):
        sim = Simulator()
        assert sim.signal("s").value == "U"
        assert sim.signal("v", width=4).value == ("U",) * 4

    def test_drive_takes_effect_next_delta(self):
        sim = Simulator()
        s = sim.signal("s", init="0")
        s.drive("1")
        assert s.value == "0"  # not yet applied
        sim.run(until=0)
        assert s.value == "1"

    def test_drive_with_delay(self):
        sim = Simulator()
        s = sim.signal("s", init="0")
        s.drive("1", delay=5)
        sim.run(until=4)
        assert s.value == "0"
        sim.run(until=5)
        assert s.value == "1"

    def test_vector_drive_int(self):
        sim = Simulator()
        v = sim.signal("v", width=8)
        v.drive(0xA5)
        sim.run(until=0)
        assert v.as_int() == 0xA5

    def test_scalar_int_drive(self):
        sim = Simulator()
        s = sim.signal("s")
        s.drive(1)
        sim.run(until=0)
        assert s.as_int() == 1

    def test_bad_drive_values(self):
        sim = Simulator()
        s = sim.signal("s")
        v = sim.signal("v", width=4)
        with pytest.raises(DriveError):
            s.drive("Q")
        with pytest.raises(DriveError):
            s.drive(2)
        with pytest.raises(DriveError):
            v.drive(16)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        s = sim.signal("s")
        with pytest.raises(SimulationError):
            s.drive("1", delay=-1)

    def test_as_int_metavalue_raises(self):
        sim = Simulator()
        s = sim.signal("s")
        from repro.hdl import LogicError
        with pytest.raises(LogicError):
            s.as_int()

    def test_change_count_and_last_event(self):
        sim = Simulator()
        s = sim.signal("s", init="0")
        s.drive("1", delay=3)
        s.drive("0", delay=7)
        sim.run(until=10)
        assert s.change_count == 2
        assert s.last_event_time == 7


class TestResolution:
    def test_two_process_drivers_resolve(self):
        sim = Simulator()
        bus = sim.signal("bus", init="Z")

        def driver_a(s):
            bus.drive("1")

        def driver_b(s):
            bus.drive("Z")

        sim.add_process("a", driver_a)
        sim.add_process("b", driver_b)
        sim.run(until=0)
        assert bus.value == "1"

    def test_contention_is_x(self):
        sim = Simulator()
        bus = sim.signal("bus")
        sim.add_process("a", lambda s: bus.drive("1"))
        sim.add_process("b", lambda s: bus.drive("0"))
        sim.run(until=0)
        assert bus.value == "X"

    def test_release_returns_bus_to_other_driver(self):
        sim = Simulator()
        bus = sim.signal("bus")
        release_now = sim.signal("rel", init="0")

        def driver_a(s):
            if release_now.value == "1":
                bus.release()
            else:
                bus.drive("0")

        sim.add_process("a", driver_a, sensitivity=[release_now])
        sim.add_process("b", lambda s: bus.drive("Z"))
        sim.run(until=0)
        assert bus.value == "0"
        release_now.drive("1")
        sim.run(until=1)
        assert bus.value == "Z"

    def test_vector_bitwise_resolution(self):
        sim = Simulator()
        bus = sim.signal("bus", width=2)
        sim.add_process("a", lambda s: bus.drive("1Z"))
        sim.add_process("b", lambda s: bus.drive("Z0"))
        sim.run(until=0)
        assert bus.value == ("1", "0")


class TestDeltaCycles:
    def test_chained_zero_delay_updates_same_time(self):
        sim = Simulator()
        a = sim.signal("a", init="0")
        b = sim.signal("b", init="0")
        c = sim.signal("c", init="0")
        sim.add_process("a2b", lambda s: b.drive(a.value), sensitivity=[a])
        sim.add_process("b2c", lambda s: c.drive(b.value), sensitivity=[b])
        sim.initialize()
        a.drive("1")
        sim.run(until=0)
        assert (a.value, b.value, c.value) == ("1", "1", "1")
        assert sim.now == 0

    def test_no_event_when_value_unchanged(self):
        sim = Simulator()
        s = sim.signal("s", init="0")
        runs = []
        sim.add_process("watch", lambda sim_: runs.append(sim_.now),
                        sensitivity=[s])
        sim.initialize()
        baseline = len(runs)
        s.drive("0")  # same value: no event
        sim.run(until=1)
        assert len(runs) == baseline

    def test_combinational_loop_detected(self):
        sim = Simulator()
        a = sim.signal("a", init="0")

        def inverter(s):
            a.drive("1" if a.value == "0" else "0")

        sim.add_process("inv", inverter, sensitivity=[a])
        with pytest.raises(CombinationalLoopError):
            sim.run(until=0)

    def test_event_flag_visible_during_delta_only(self):
        sim = Simulator()
        s = sim.signal("s", init="0")
        flags = []
        sim.add_process("watch", lambda sim_: flags.append(s.event),
                        sensitivity=[s])
        sim.initialize()
        s.drive("1")
        sim.run(until=2)
        assert flags[-1] is True
        assert s.event is False  # after the run, stamp has moved on


class TestClocksAndGenerators:
    def test_clock_toggles(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        transitions = []
        sim.add_process("watch",
                        lambda s: transitions.append((s.now, clk.value)),
                        sensitivity=[clk])
        sim.run(until=30)
        assert transitions == [(0, "0"), (5, "1"), (10, "0"), (15, "1"),
                               (20, "0"), (25, "1"), (30, "0")]

    def test_clock_start_high_and_duty(self):
        sim = Simulator()
        clk = sim.signal("clk")
        sim.add_clock(clk, period=10, start_high=True, duty_ticks=3)
        sim.run(until=0)
        assert clk.value == "1"
        sim.run(until=3)
        assert clk.value == "0"
        sim.run(until=10)
        assert clk.value == "1"

    def test_invalid_clock_config(self):
        sim = Simulator()
        clk = sim.signal("clk")
        with pytest.raises(SimulationError):
            sim.add_clock(clk, period=1)
        with pytest.raises(SimulationError):
            sim.add_clock(clk, period=10, duty_ticks=10)

    def test_generator_timed_waits(self):
        sim = Simulator()
        s = sim.signal("s", init="0")

        def stim():
            s.drive("1")
            yield 10
            s.drive("0")
            yield 5
            s.drive("1")

        sim.add_generator("stim", stim())
        sim.run(until=9)
        assert s.value == "1"
        sim.run(until=12)
        assert s.value == "0"
        sim.run(until=15)
        assert s.value == "1"

    def test_generator_rising_edge_wait(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        seen = []

        def waiter():
            for _ in range(3):
                yield RisingEdge(clk)
                seen.append(sim.now)

        sim.add_generator("w", waiter())
        sim.run(until=100)
        assert seen == [5, 15, 25]

    def test_generator_falling_edge_wait(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        seen = []

        def waiter():
            yield FallingEdge(clk)
            seen.append(sim.now)

        sim.add_generator("w", waiter())
        sim.run(until=100)
        assert seen == [10]

    def test_generator_wait_on_any_of_two_signals(self):
        sim = Simulator()
        a = sim.signal("a", init="0")
        b = sim.signal("b", init="0")
        wakes = []

        def waiter():
            while True:
                yield (a, b)
                wakes.append(sim.now)

        sim.add_generator("w", waiter())
        a.drive("1", delay=3)
        b.drive("1", delay=7)
        sim.run(until=10)
        assert wakes == [3, 7]

    def test_finished_generator_stops(self):
        sim = Simulator()
        s = sim.signal("s", init="0")

        def once():
            s.drive("1")
            yield 1
            s.drive("0")

        proc = sim.add_generator("once", once())
        sim.run(until=10)
        assert proc.finished
        assert s.value == "0"

    def test_negative_yield_rejected(self):
        sim = Simulator()

        def bad():
            yield -5

        sim.add_generator("bad", bad())
        from repro.hdl import ProcessError
        with pytest.raises(ProcessError):
            sim.run(until=1)

    def test_bad_yield_type_rejected(self):
        sim = Simulator()

        def bad():
            yield "soon"

        sim.add_generator("bad", bad())
        from repro.hdl import ProcessError
        with pytest.raises(ProcessError):
            sim.run(until=1)


class TestKernelAccounting:
    def test_event_and_delta_counters(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        sim.run(until=100)
        # One transition per half period at t=5,10,...,100; the initial
        # drive of '0' onto an already-'0' signal is not an event.
        assert sim.signal_events == 20
        assert sim.delta_cycles >= 21
        assert sim.process_runs >= 21

    def test_next_event_time(self):
        sim = Simulator()
        s = sim.signal("s", init="0")
        sim.initialize()
        assert sim.next_event_time() is None
        s.drive("1", delay=7)
        assert sim.next_event_time() == 7

    def test_run_until_advances_time_without_events(self):
        sim = Simulator()
        sim.run(until=42)
        assert sim.now == 42

    def test_run_for(self):
        sim = Simulator()
        sim.run(until=10)
        sim.run_for(5)
        assert sim.now == 15
