"""Time-scale conversion between the two simulators (§3.2).

"Time units in network simulations can be derived from cell time,
whereas the time unit in HW systems is fixed by the HW clock steering
bit-level operations. ... This means that there is a ratio of 1:400
for a simulation time step in OPNET and VSS."

One ATM cell is 53 octets = 424 bits; with a bit-serial hardware clock
one OPNET cell-time step therefore corresponds to 424 HDL clock cycles
(the paper rounds to "1:400"), and with the octet-serial interface of
Figure 4 to 53 clock cycles.  :class:`TimeBase` owns the conversion
between network-simulator seconds (float) and HDL ticks (int) and the
derived cell/clock arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TimeBase", "STM1_LINE_RATE", "CELL_BITS", "CELL_OCTETS"]

STM1_LINE_RATE = 155.52e6
CELL_OCTETS = 53
CELL_BITS = CELL_OCTETS * 8


@dataclass(frozen=True)
class TimeBase:
    """Conversion between netsim seconds and HDL ticks.

    Args:
        tick_seconds: HDL tick length (the time unit of the
            :class:`repro.hdl.Simulator`).
        clock_period_ticks: DUT clock period in ticks.
        octets_per_clock: cell octets transferred per DUT clock (1 for
            the octet-serial Figure-4 interface).

    Example — octet-serial 155 Mbit/s port with a 1 ns tick:
        >>> tb = TimeBase.for_line_rate(STM1_LINE_RATE)
        >>> tb.clocks_per_cell
        53
    """

    tick_seconds: float = 1e-9
    clock_period_ticks: int = 10
    octets_per_clock: int = 1

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ValueError("non-positive tick length")
        if self.clock_period_ticks < 2:
            raise ValueError("clock period must be >= 2 ticks")
        if self.octets_per_clock < 1:
            raise ValueError("octets_per_clock must be >= 1")

    # -- construction --------------------------------------------------------
    @classmethod
    def for_line_rate(cls, line_rate_bps: float = STM1_LINE_RATE,
                      tick_seconds: float = 1e-9,
                      octets_per_clock: int = 1) -> "TimeBase":
        """Derive the clock period from a line rate: the DUT clock must
        move ``octets_per_clock`` octets per period to keep up."""
        octet_time = 8.0 / line_rate_bps
        period = max(2, round(octet_time * octets_per_clock
                              / tick_seconds))
        return cls(tick_seconds=tick_seconds, clock_period_ticks=period,
                   octets_per_clock=octets_per_clock)

    # -- conversions ---------------------------------------------------------
    def to_ticks(self, seconds: float) -> int:
        """Netsim seconds -> HDL ticks (floor).

        A tiny epsilon absorbs binary-float quotient error so that an
        exact multiple of the tick (e.g. 1 µs / 1 ns) lands on its
        tick instead of one below.
        """
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        quotient = seconds / self.tick_seconds
        return int(math.floor(quotient + 1e-6))

    def to_seconds(self, ticks: int) -> float:
        """HDL ticks -> netsim seconds."""
        return ticks * self.tick_seconds

    def clocks_to_ticks(self, clocks: int) -> int:
        """DUT clock cycles -> HDL ticks."""
        return clocks * self.clock_period_ticks

    def ticks_to_clocks(self, ticks: int) -> int:
        """HDL ticks -> whole DUT clock cycles (floor)."""
        return ticks // self.clock_period_ticks

    # -- cell arithmetic -------------------------------------------------------
    @property
    def clocks_per_cell(self) -> int:
        """DUT clocks to transfer one 53-octet cell."""
        return math.ceil(CELL_OCTETS / self.octets_per_clock)

    @property
    def cell_time_ticks(self) -> int:
        """HDL ticks per cell transfer."""
        return self.clocks_per_cell * self.clock_period_ticks

    @property
    def cell_time_seconds(self) -> float:
        """Seconds per cell transfer at the DUT clock."""
        return self.to_seconds(self.cell_time_ticks)

    @property
    def time_step_ratio(self) -> float:
        """HDL *clock-edge events* per network-simulator cell event.

        Each clock period produces two edges; with a bit-serial clock
        (``octets_per_clock`` irrelevant, 424 bit clocks per cell) the
        paper quotes ~1:400 — :meth:`bit_serial_ratio` reproduces that
        figure; this property gives the ratio for the configured
        interface.
        """
        return 2.0 * self.clocks_per_cell

    @staticmethod
    def bit_serial_ratio() -> int:
        """Bit clocks per cell: 53 octets x 8 = 424 (the paper's
        "ratio of 1:400" rounded)."""
        return CELL_BITS
