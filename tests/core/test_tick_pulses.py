"""Regression: every tariff tick produces a distinct observable edge.

The seed's ``_deliver`` drove the pulse at the delivery time directly;
two TICK_MSG deliveries landing within one clock period left the
signal high across both (transport drives of the same value produce no
event), so the DUT saw a single rising edge for several ticks.  The
entity now serialises pulses — one period high, one period low each —
deferring a pulse that would overlap the previous one.
"""

import pytest

from repro.core import CoVerificationEnvironment, TimeBase
from repro.hdl import RisingEdge
from repro.rtl import CellStreamPort

TB = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)


def build():
    env = CoVerificationEnvironment(timebase=TB, observe=False)
    rx = CellStreamPort(env.hdl, "dut.rx")
    tick = env.hdl.signal("dut.tariff_tick", init="0")
    entity = env.add_dut(rx_port=rx, tick_signal=tick)

    edges = []

    def watch():
        while True:
            yield RisingEdge(tick)
            edges.append(env.hdl.now)

    env.hdl.add_generator("tick_watch", watch())
    return env, entity, edges


def finish(env, entity, horizon):
    entity.advance_time(horizon)
    entity.finish(horizon)


def test_two_ticks_one_ns_apart_give_two_edges():
    env, entity, edges = build()
    entity.send_tariff_tick(1e-6)
    entity.send_tariff_tick(1e-6 + 1e-9)  # same clock period
    finish(env, entity, 2e-6)
    assert entity.ticks_in == 2
    assert len(edges) == 2
    # pulses are serialised: edges at least two periods apart
    assert edges[1] - edges[0] >= 2 * TB.clock_period_ticks


@pytest.mark.parametrize("burst", [2, 3, 5])
def test_same_timestamp_burst_gives_one_edge_each(burst):
    env, entity, edges = build()
    for _ in range(burst):
        entity.send_tariff_tick(1e-6)
    finish(env, entity, 1e-5)
    assert entity.ticks_in == burst
    assert len(edges) == burst


def test_well_spaced_ticks_unaffected():
    env, entity, edges = build()
    times = [1e-6, 2e-6, 3e-6]
    for t in times:
        entity.send_tariff_tick(t)
    finish(env, entity, 4e-6)
    assert len(edges) == len(times)
    # a pulse with no backlog starts at its delivery time
    assert edges[0] <= TB.to_ticks(1e-6) + 2 * TB.clock_period_ticks
