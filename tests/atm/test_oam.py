"""Tests for OAM F5 loopback fault management."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import (AtmCell, AtmSwitch, LoopbackInitiator,
                       LoopbackResponder, OamError, PT_END_TO_END_F5,
                       PT_SEGMENT_F5, check_crc10, crc10, is_oam_cell,
                       make_loopback_cell, parse_oam_cell)
from repro.netsim import Network, SinkModule


class TestCrc10:
    def test_empty_is_zero(self):
        assert crc10([]) == 0

    def test_appending_crc_zeroes_remainder(self):
        """The defining property: message ++ CRC (bit-contiguous) is
        divisible by the generator.  The 10 CRC bits must follow the
        message with no gap, so they are appended top-aligned (10 CRC
        bits then 6 zero padding bits, which keep divisibility)."""
        data = [0x11, 0x22, 0x33, 0x44]
        crc = crc10(data)
        extended = data + [(crc >> 2) & 0xFF, (crc & 0x3) << 6]
        assert crc10(extended) == 0

    def test_out_of_range_byte_rejected(self):
        with pytest.raises(OamError):
            crc10([300])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=46),
           st.integers(0, 45 * 8 - 1))
    def test_property_single_bit_errors_detected(self, data, bitpos):
        bitpos = bitpos % (len(data) * 8)
        crc = crc10(data)
        corrupted = list(data)
        corrupted[bitpos // 8] ^= 1 << (bitpos % 8)
        assert crc10(corrupted) != crc


class TestLoopbackCell:
    def test_round_trip(self):
        cell = make_loopback_cell(1, 100, correlation_tag=0xDEADBEEF)
        info = parse_oam_cell(cell)
        assert info.vpi == 1 and info.vci == 100
        assert info.end_to_end
        assert info.loopback_indication == 1
        assert info.correlation_tag == 0xDEADBEEF

    def test_segment_flow(self):
        cell = make_loopback_cell(1, 100, 5, end_to_end=False)
        assert cell.pt == PT_SEGMENT_F5
        assert not parse_oam_cell(cell).end_to_end

    def test_crc10_embedded_and_checked(self):
        cell = make_loopback_cell(1, 100, 5)
        assert check_crc10(list(cell.payload))
        corrupted = list(cell.payload)
        corrupted[3] ^= 0x01
        broken = AtmCell(vpi=1, vci=100, pt=PT_END_TO_END_F5,
                         payload=tuple(corrupted))
        with pytest.raises(OamError):
            parse_oam_cell(broken)

    def test_user_cell_is_not_oam(self):
        user = AtmCell.with_payload(1, 100, [1, 2, 3], pt=0)
        assert not is_oam_cell(user)
        with pytest.raises(OamError):
            parse_oam_cell(user)

    def test_location_id_carried(self):
        cell = make_loopback_cell(1, 100, 5,
                                  location_id=[0xAA, 0xBB])
        info = parse_oam_cell(cell)
        assert info.location_id[:2] == (0xAA, 0xBB)
        assert info.location_id[2] == 0x6A  # filler

    def test_bad_tag_rejected(self):
        with pytest.raises(OamError):
            make_loopback_cell(1, 100, -1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 0xFFFFFFFF))
    def test_property_tag_round_trip(self, tag):
        assert parse_oam_cell(
            make_loopback_cell(3, 33, tag)).correlation_tag == tag


class TestResponderInitiator:
    def build_loop(self, delay=1e-5, timeout=1e-3, with_responder=True):
        """initiator --link--> responder --(stream 1)--link--> initiator"""
        net = Network()
        a = net.add_node("a")
        b = net.add_node("b")
        initiator = LoopbackInitiator("init", vpi=1, vci=100,
                                      timeout=timeout)
        a.add_module(initiator)
        a.bind_port_output(0, initiator, 0)
        a.bind_port_input(0, initiator, 0)
        responder = LoopbackResponder("resp")
        sink = SinkModule("sink", keep=True)
        b.add_module(responder)
        b.add_module(sink)
        b.connect(responder, 0, sink, 0)       # pass-through traffic
        if with_responder:
            b.bind_port_input(0, responder, 0)
            b.bind_port_output(1, responder, 1)  # looped cells go back
            net.add_link(b, 1, a, 0, delay=delay)
        else:
            # broken path: the far end has no OAM responder at all
            b.bind_port_input(0, sink, 0)
        net.add_link(a, 0, b, 0, delay=delay)
        return net, initiator, responder, sink

    def test_round_trip_measured(self):
        net, initiator, responder, sink = self.build_loop(delay=1e-5)
        tag = initiator.probe()
        net.run(until=0.01)
        assert responder.looped == 1
        assert initiator.timeouts == 0
        assert initiator.round_trips[tag] == pytest.approx(2e-5)

    def test_timeout_on_broken_path(self):
        net, initiator, responder, sink = self.build_loop(
            with_responder=False, timeout=1e-4)
        initiator.probe()
        net.run(until=0.01)
        assert initiator.timeouts == 1
        assert initiator.round_trips == {}

    def test_user_traffic_passes_through_responder(self):
        net, initiator, responder, sink = self.build_loop()
        user = AtmCell.with_payload(1, 100, [7])
        net.kernel.schedule(
            0.0, lambda: net.nodes["a"].transmit(user.to_packet(), 0))
        net.run(until=0.01)
        assert responder.forwarded == 1
        assert len(sink.received) == 1

    def test_multiple_probes_distinct_tags(self):
        net, initiator, responder, sink = self.build_loop()
        tags = [initiator.probe() for _ in range(3)]
        net.run(until=0.01)
        assert len(set(tags)) == 3
        assert set(initiator.round_trips) == set(tags)

    def test_callback_invoked(self):
        results = []
        net = Network()
        a = net.add_node("a")
        initiator = LoopbackInitiator(
            "init", vpi=1, vci=1, timeout=1e-4,
            on_result=lambda tag, rtt: results.append((tag, rtt)))
        a.add_module(initiator)
        a.bind_port_output(0, initiator, 0)
        b = net.add_node("b")
        sink = SinkModule("void")
        b.add_module(sink)
        b.bind_port_input(0, sink, 0)
        net.add_link(a, 0, b, 0)
        initiator.probe()
        net.run(until=0.01)
        assert results == [(1, None)]  # timed out, reported as None

    def test_loopback_through_the_switch(self):
        """OAM cells ride the user connection through VPI/VCI
        translation and still loop correctly."""
        net = Network()
        switch = AtmSwitch(net, "sw", num_ports=2)
        switch.install_connection(0, 1, 100, 1, 2, 200)
        switch.install_connection(1, 2, 200, 0, 1, 100)  # reverse path
        a = net.add_node("a")
        initiator = LoopbackInitiator("init", vpi=1, vci=100,
                                      timeout=1e-2)
        a.add_module(initiator)
        a.bind_port_output(0, initiator, 0)
        a.bind_port_input(0, initiator, 0)
        b = net.add_node("b")
        responder = LoopbackResponder("resp")
        sink = SinkModule("sink")
        b.add_module(responder)
        b.add_module(sink)
        b.bind_port_input(0, responder, 0)
        b.connect(responder, 0, sink, 0)
        b.bind_port_output(0, responder, 1)
        net.add_duplex_link(a, 0, switch.node, 0, rate_bps=155.52e6)
        net.add_duplex_link(b, 0, switch.node, 1, rate_bps=155.52e6)
        initiator.probe()
        net.run(until=0.1)
        assert responder.looped == 1
        assert initiator.timeouts == 0
        assert len(initiator.round_trips) == 1

    def test_invalid_timeout(self):
        with pytest.raises(OamError):
            LoopbackInitiator("x", 1, 1, timeout=0)
