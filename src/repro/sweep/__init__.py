"""Scenario-matrix sweeps: many co-verification runs, one command.

The paper's promise is that one network-level test bench verifies many
DUT configurations; this package is the scaling layer that delivers it
in bulk.  A :class:`SweepSpec` declares the matrix (traffic model ×
switch port count × seed × synchronisation mode), :class:`SweepRunner`
fans the expanded :class:`RunSpec` cells out over a ``multiprocessing``
pool — per-run wall-clock timeouts, one bounded retry on worker crash,
graceful degradation to serial execution when workers die — and the
per-run :class:`~repro.core.CoVerificationEnvironment` metrics
snapshots are aggregated (:func:`aggregate_results`) into a
machine-readable payload plus a human table
(:func:`render_sweep_report`).

Command-line front end: ``python -m repro sweep`` (see
``docs/api/sweep.md`` for the full reference, and
``examples/sweep_small.toml`` for a spec to start from).
"""

from .aggregate import (VOLATILE_KEYS, aggregate_results,
                        merge_latency_histograms, strip_volatile)
from .report import render_sweep_report
from .runner import SweepRunner, run_sweep
from .scenario import execute_run
from .spec import (RunSpec, SweepSpec, SweepSpecError, SYNC_MODES,
                   TRAFFIC_MODELS)

__all__ = [
    "VOLATILE_KEYS", "aggregate_results", "merge_latency_histograms",
    "strip_volatile",
    "render_sweep_report",
    "SweepRunner", "run_sweep",
    "execute_run",
    "RunSpec", "SweepSpec", "SweepSpecError", "SYNC_MODES",
    "TRAFFIC_MODELS",
]
