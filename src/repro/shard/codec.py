"""Binary zero-copy frame codec for the shard wire path.

PR 8 shipped frames as pickled tuples (columnar, but still pickle):
measured against the local reference that wire cost 41.5 % of the
one-shard run — the op-log transport, not the DUTs, had become the
hot path.  SCE-MI's transaction pipes (PAPERS.md) only win when
marshalling is a *fixed-format, copy-minimal* discipline; this module
is that discipline for every frame kind the shard protocol speaks:

* **struct-packed headers** — every frame opens with an 8-octet
  ``<HBBI`` header (magic, version, kind code, payload length).  A
  pickle stream can never carry the magic, so the transports reject
  foreign bytes with :class:`CodecError` *before* any byte is
  interpreted — the wire no longer unpickles anything.
* **columnar op frames** — ``FRAME_OPS``/``FRAME_ACK`` payloads are
  four contiguous columns (one f64 time column, one i32 port column,
  one op-code byte string, one 53-octet-multiple cell blob), built
  incrementally by :class:`OpBatch` and decoded *without copying* by
  :class:`PackedOps`: ``memoryview.cast`` lends typed views straight
  into the receive buffer — no chunk-list joins, no per-op tuples on
  the wire, and the replay side can slice cells directly out of the
  blob (:meth:`repro.shard.group.ShardGroup.apply_packed`).  When the
  topology is observed, both payloads append one optional u64
  trace-id column (one id per cell, ``0`` = unstamped) so provenance
  chains survive the shard boundary; its presence is discriminated by
  payload length alone, so an unobserved run's wire image is
  octet-identical to PR 9's.
* **a safe recursive value codec** — the rare control frames
  (``HELLO``/``FINISH``/``RESULT``/``SNAPSHOT``/``ERROR``/``CLOSE``)
  carry plain data (None/bool/int/float/str/bytes/list/tuple/dict),
  tag-encoded so the exact Python shapes round-trip (tuples stay
  tuples, bytes stay bytes) with **zero code execution** on decode.

Every malformed buffer — truncated, corrupt, wrong magic, interior
inconsistency — raises :class:`CodecError` with a precise message;
the seeded fuzz tests assert no other exception type can escape.

Decoded ``FRAME_OPS``/``FRAME_ACK`` payloads alias the transport's
reusable receive buffer and stay valid only until the next ``recv``
on that transport — consume (or copy) before receiving again, which
the worker loop and coordinator handle do by construction.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Any, List, Tuple

__all__ = ["CodecError", "OpBatch", "PackedOps",
           "OutputBatch", "PackedOutputs",
           "encode_frame", "decode_frame",
           "frame_header", "parse_header",
           "HEADER_OCTETS", "MAGIC", "VERSION"]

#: every cell on the wire is one whole ATM cell
CELL_OCTETS = 53

#: frame header: magic, version, kind code, payload octet count
_HEADER = struct.Struct("<HBBI")
HEADER_OCTETS = _HEADER.size  # 8
MAGIC = 0xAC53  # "ATM Cell 53" — never the opening bytes of a pickle
VERSION = 1

#: fixed sub-header of an ops/ack payload: seq, n_ops, n_cells —
#: 16 octets, so the f64 time column lands 8-aligned when the payload
#: itself starts at an aligned address (it does: transports decode at
#: offset 0 of their receive buffer)
_OPS_HEAD = struct.Struct("<QII")

#: op codes as single octets ("c"/"n"/"k", matching protocol.py)
CODE_CELL = ord("c")
CODE_NULL = ord("n")
CODE_TICK = ord("k")
_VALID_CODES = frozenset((CODE_CELL, CODE_NULL, CODE_TICK))

#: frame kinds <-> wire codes (strings stay the in-process currency;
#: only the single code octet travels)
_KIND_TO_CODE = {"hello": 1, "ops": 2, "ack": 3, "finish": 4,
                 "result": 5, "snapshot": 6, "error": 7, "close": 8,
                 "telemetry": 9}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}
_OPS_CODE = _KIND_TO_CODE["ops"]
_ACK_CODE = _KIND_TO_CODE["ack"]

#: the wire is little-endian; on little-endian hosts (everything this
#: runs on in practice) the typed columns decode as zero-copy
#: memoryview casts, elsewhere through a struct-based copy fallback
_LITTLE = sys.byteorder == "little"
#: array type code with a 4-octet signed item (the port column)
_INT4 = "i" if array("i").itemsize == 4 else "l"
assert array(_INT4).itemsize == 4 or not _LITTLE
#: the trace-id column is u64 ("Q" is 8 octets on every CPython)
_UINT8 = "Q"


class CodecError(ValueError):
    """A buffer is not a valid codec frame (truncated, corrupt, wrong
    magic — including anything pickled) or a value cannot be encoded."""


# ----------------------------------------------------------------------
# Op batches (encode side) and packed views (decode side)
# ----------------------------------------------------------------------
class OpBatch:
    """Columnar builder of one op batch — the coordinator-side twin of
    :class:`PackedOps`.

    Ops are appended straight into four growing columns (op-code
    bytes, f64 times, i32 ports, one contiguous cell blob); no per-op
    tuple ever exists.  ``ports`` and ``blob`` carry one entry per
    *cell* op only — nulls and ticks contribute just a code and a
    time.  ``tids`` holds one u64 provenance trace id per cell
    (``0`` = unstamped); the column only reaches the wire when at
    least one cell is stamped, so unobserved frames are octet-for-
    octet what PR 9 shipped.
    """

    __slots__ = ("codes", "times", "ports", "blob", "tids")

    def __init__(self) -> None:
        self.codes = bytearray()
        self.times = array("d")
        self.ports = array(_INT4)
        self.blob = bytearray()
        self.tids = array(_UINT8)

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def n_cells(self) -> int:
        """Cell ops in the batch (the blob holds 53 octets each)."""
        return len(self.ports)

    def add_cell(self, time: float, port: int, octets,
                 tid: int = 0) -> None:
        """Append one cell-delivery op (*octets* must be 53 octets);
        *tid* optionally stamps the cell with a provenance trace id."""
        if len(octets) != CELL_OCTETS:
            raise ValueError(
                f"cell op carries {len(octets)} octets, expected "
                f"{CELL_OCTETS}")
        self.codes.append(CODE_CELL)
        self.times.append(time)
        self.ports.append(port)
        self.blob += octets
        self.tids.append(tid)

    def add_null(self, time: float) -> None:
        """Append one null-message (time horizon) op."""
        self.codes.append(CODE_NULL)
        self.times.append(time)

    def add_tick(self, time: float) -> None:
        """Append one tariff-tick op."""
        self.codes.append(CODE_TICK)
        self.times.append(time)

    def packed(self) -> "PackedOps":
        """A :class:`PackedOps` view over this batch's own columns —
        the local reference mode replays through the identical packed
        surface the worker decodes from the wire."""
        return PackedOps(len(self.codes), len(self.ports), self.codes,
                         self.times, self.ports, memoryview(self.blob),
                         self.tids if any(self.tids) else None)

    def split(self, max_batch: int) -> List["OpBatch"]:
        """Chunk into batches of at most *max_batch* ops (column
        slices; op order is preserved so replay semantics are
        unchanged)."""
        n = len(self.codes)
        if max_batch <= 0 or n <= max_batch:
            return [self] if n else []
        out: List[OpBatch] = []
        cell_at = 0
        for start in range(0, n, max_batch):
            stop = min(start + max_batch, n)
            cells = self.codes.count(CODE_CELL, start, stop)
            sub = OpBatch()
            sub.codes = self.codes[start:stop]
            sub.times = self.times[start:stop]
            sub.ports = self.ports[cell_at:cell_at + cells]
            sub.blob = self.blob[cell_at * CELL_OCTETS:
                                 (cell_at + cells) * CELL_OCTETS]
            sub.tids = self.tids[cell_at:cell_at + cells]
            cell_at += cells
            out.append(sub)
        return out


class PackedOps:
    """Zero-copy view of one decoded op batch.

    ``codes``/``times``/``ports``/``blob`` are typed views
    (``memoryview.cast`` on the wire path, the builder's own arrays on
    the local path) — indexing yields plain ints/floats, slicing the
    blob yields 53-octet cell images without copying.  ``tids`` is the
    optional u64 trace-id column (one id per cell) or ``None`` when
    the batch is unstamped.  The views alias the transport's receive
    buffer: valid until the next ``recv``.
    """

    __slots__ = ("n_ops", "n_cells", "codes", "times", "ports", "blob",
                 "tids")

    def __init__(self, n_ops: int, n_cells: int, codes, times, ports,
                 blob, tids=None) -> None:
        self.n_ops = n_ops
        self.n_cells = n_cells
        self.codes = codes
        self.times = times
        self.ports = ports
        self.blob = blob
        self.tids = tids

    def __len__(self) -> int:
        return self.n_ops

    def ops(self) -> List[Tuple[Any, ...]]:
        """Materialise the batch as the classic op tuples (see
        :mod:`repro.shard.protocol`) — tests and tooling only; the
        replay path never builds these."""
        out: List[Tuple[Any, ...]] = []
        codes, times, ports, blob = (self.codes, self.times,
                                     self.ports, self.blob)
        cell = 0
        for i in range(self.n_ops):
            code = codes[i]
            if code == CODE_CELL:
                out.append(("c", times[i], ports[cell],
                            bytes(blob[cell * CELL_OCTETS:
                                       (cell + 1) * CELL_OCTETS])))
                cell += 1
            elif code == CODE_NULL:
                out.append(("n", times[i]))
            else:
                out.append(("k", times[i]))
        return out


# ----------------------------------------------------------------------
# Typed-column helpers (zero-copy on little-endian hosts)
# ----------------------------------------------------------------------
def _column_f64(view: memoryview, count: int):
    if _LITTLE:
        return view.cast("d")
    return struct.unpack(f"<{count}d", view)  # pragma: no cover


def _column_i32(view: memoryview, count: int):
    if _LITTLE:
        return view.cast(_INT4)
    return struct.unpack(f"<{count}i", view)  # pragma: no cover


def _f64_bytes(column: array) -> bytes:
    if _LITTLE:
        return column.tobytes()
    swapped = array("d", column)  # pragma: no cover
    swapped.byteswap()  # pragma: no cover
    return swapped.tobytes()  # pragma: no cover


def _i32_bytes(column: array) -> bytes:
    if _LITTLE:
        return column.tobytes()
    return struct.pack(f"<{len(column)}i", *column)  # pragma: no cover


def _column_u64(view: memoryview, count: int):
    if _LITTLE:
        return view.cast(_UINT8)
    return struct.unpack(f"<{count}Q", view)  # pragma: no cover


def _u64_bytes(column) -> bytes:
    if isinstance(column, array):
        if _LITTLE:
            return column.tobytes()
        return struct.pack(  # pragma: no cover
            f"<{len(column)}Q", *column)
    return bytes(column)


# ----------------------------------------------------------------------
# OPS / ACK payloads
# ----------------------------------------------------------------------
def _encode_ops(seq: int, batch) -> bytes:
    """Payload image of ``(seq, OpBatch)`` (also accepts a
    :class:`PackedOps`, re-encoding a decoded batch verbatim).

    The trace-id column is emitted only when at least one cell is
    stamped (an all-zero column is normalised away), immediately after
    the time column so both u64 columns stay 8-aligned.
    """
    n_ops = len(batch.codes)
    n_cells = len(batch.ports)
    tids = getattr(batch, "tids", None)
    parts = [
        _OPS_HEAD.pack(seq, n_ops, n_cells),
        _f64_bytes(batch.times) if isinstance(batch.times, array)
        else bytes(batch.times),
    ]
    if tids is not None and len(tids) == n_cells and any(tids):
        parts.append(_u64_bytes(tids))
    parts += [
        _i32_bytes(batch.ports) if isinstance(batch.ports, array)
        else bytes(batch.ports),
        bytes(batch.codes),
        bytes(batch.blob),
    ]
    return b"".join(parts)


def _decode_ops(view: memoryview) -> Tuple[int, PackedOps]:
    if len(view) < _OPS_HEAD.size:
        raise CodecError(
            f"ops payload truncated: {len(view)} octets, need at "
            f"least {_OPS_HEAD.size} for the seq/count header")
    seq, n_ops, n_cells = _OPS_HEAD.unpack_from(view, 0)
    if n_cells > n_ops:
        raise CodecError(
            f"ops payload corrupt: {n_cells} cells > {n_ops} ops")
    expected = (_OPS_HEAD.size + 8 * n_ops + 4 * n_cells + n_ops
                + CELL_OCTETS * n_cells)
    if n_cells and len(view) == expected + 8 * n_cells:
        has_tids = True
    elif len(view) == expected:
        has_tids = False
    else:
        raise CodecError(
            f"ops payload length mismatch: {len(view)} octets for "
            f"{n_ops} ops / {n_cells} cells (expected {expected} or "
            f"{expected + 8 * n_cells} with trace ids)")
    at = _OPS_HEAD.size
    times = _column_f64(view[at:at + 8 * n_ops], n_ops)
    at += 8 * n_ops
    tids = None
    if has_tids:
        tids = _column_u64(view[at:at + 8 * n_cells], n_cells)
        at += 8 * n_cells
    ports = _column_i32(view[at:at + 4 * n_cells], n_cells)
    at += 4 * n_cells
    codes = view[at:at + n_ops]
    at += n_ops
    blob = view[at:at + CELL_OCTETS * n_cells]
    code_bytes = bytes(codes)
    if not _VALID_CODES.issuperset(code_bytes):
        bad = sorted(set(code_bytes) - _VALID_CODES)
        raise CodecError(f"ops payload carries unknown op code(s) "
                         f"{bad}")
    if code_bytes.count(CODE_CELL) != n_cells:
        raise CodecError(
            f"ops payload corrupt: code column has "
            f"{code_bytes.count(CODE_CELL)} cell op(s) but the "
            f"header claims {n_cells}")
    return seq, PackedOps(n_ops, n_cells, codes, times, ports, blob,
                          tids)


#: ack sub-header: seq, n_cells (+ 4 pad octets keeping times aligned)
_ACK_HEAD = struct.Struct("<QII")


class OutputBatch:
    """Columnar builder of one ack's piggy-backed output cells — the
    worker-side twin of :class:`PackedOutputs`.

    :meth:`repro.shard.group.ShardGroup.new_outputs_packed` appends
    each fresh output cell straight into three growing columns (f64
    times, i32 ports, one contiguous 53-octet-multiple blob), and the
    encoder ships those columns verbatim — no per-cell tuple or bytes
    object ever exists between the DUT and the wire.  ``tids`` mirrors
    :class:`OpBatch`: one u64 trace id per cell, shipped only when at
    least one output cell carries provenance.
    """

    __slots__ = ("times", "ports", "blob", "tids")

    def __init__(self) -> None:
        self.times = array("d")
        self.ports = array(_INT4)
        self.blob = bytearray()
        self.tids = array(_UINT8)

    def __len__(self) -> int:
        return len(self.ports)

    def add(self, port: int, time: float, octets,
            tid: int = 0) -> None:
        """Append one output cell (*octets* must be 53 octets);
        *tid* optionally carries the cell's provenance trace id back
        to the coordinator."""
        if len(octets) != CELL_OCTETS:
            raise CodecError(
                f"output cell carries {len(octets)} octets, expected "
                f"{CELL_OCTETS}")
        self.ports.append(port)
        self.times.append(time)
        # extend, not +=: accepts bytes-likes and plain octet lists
        # (AtmCell.to_octets) alike
        self.blob.extend(octets)
        self.tids.append(tid)


class PackedOutputs:
    """Zero-copy view of one decoded ack's output columns.

    ``times``/``ports``/``blob`` are typed views aliasing the
    transport's receive buffer (valid until the next ``recv``) — the
    coordinator copies them into its per-port collectors without ever
    materialising per-cell tuples.  ``tids`` is the optional u64
    trace-id column or ``None`` when the ack is unstamped.
    """

    __slots__ = ("n_cells", "times", "ports", "blob", "tids")

    def __init__(self, n_cells: int, times, ports, blob,
                 tids=None) -> None:
        self.n_cells = n_cells
        self.times = times
        self.ports = ports
        self.blob = blob
        self.tids = tids

    def __len__(self) -> int:
        return self.n_cells

    def outputs(self) -> List[Tuple[int, float, bytes]]:
        """Materialise as classic ``(port, seconds, octets)`` tuples —
        tests and tooling only; the ack path never builds these."""
        times, ports, blob = self.times, self.ports, self.blob
        return [(ports[i], times[i],
                 bytes(blob[i * CELL_OCTETS:(i + 1) * CELL_OCTETS]))
                for i in range(self.n_cells)]


def _encode_ack(seq: int, outputs) -> bytes:
    """Payload image of ``(seq, outputs)``.

    *outputs* is an :class:`OutputBatch`/:class:`PackedOutputs` (the
    hot path — columns pass straight to the wire) or a legacy list of
    ``(port, t, octets)`` tuples (tests and tooling).
    """
    if isinstance(outputs, (OutputBatch, PackedOutputs)):
        n_cells = len(outputs)
        if len(outputs.blob) != n_cells * CELL_OCTETS:
            raise CodecError(
                f"output blob carries {len(outputs.blob)} octets for "
                f"{n_cells} cell(s)")
        tids = outputs.tids
        parts = [
            _ACK_HEAD.pack(seq, n_cells, 0),
            _f64_bytes(outputs.times)
            if isinstance(outputs.times, array)
            else bytes(outputs.times),
        ]
        if tids is not None and len(tids) == n_cells and any(tids):
            parts.append(_u64_bytes(tids))
        parts += [
            _i32_bytes(outputs.ports)
            if isinstance(outputs.ports, array)
            else bytes(outputs.ports),
            bytes(outputs.blob),
        ]
        return b"".join(parts)
    times = array("d")
    ports = array(_INT4)
    chunks = [b""]
    for port, when, octets in outputs:
        if len(octets) != CELL_OCTETS:
            raise CodecError(
                f"output cell carries {len(octets)} octets, expected "
                f"{CELL_OCTETS}")
        ports.append(port)
        times.append(when)
        chunks.append(bytes(octets))
    chunks[0] = (_ACK_HEAD.pack(seq, len(ports), 0)
                 + _f64_bytes(times) + _i32_bytes(ports))
    return b"".join(chunks)


def _decode_ack(view: memoryview) -> Tuple[int, PackedOutputs]:
    if len(view) < _ACK_HEAD.size:
        raise CodecError(
            f"ack payload truncated: {len(view)} octets, need at "
            f"least {_ACK_HEAD.size} for the seq/count header")
    seq, n_cells, _pad = _ACK_HEAD.unpack_from(view, 0)
    expected = _ACK_HEAD.size + (8 + 4 + CELL_OCTETS) * n_cells
    if n_cells and len(view) == expected + 8 * n_cells:
        has_tids = True
    elif len(view) == expected:
        has_tids = False
    else:
        raise CodecError(
            f"ack payload length mismatch: {len(view)} octets for "
            f"{n_cells} cell(s) (expected {expected} or "
            f"{expected + 8 * n_cells} with trace ids)")
    at = _ACK_HEAD.size
    times = _column_f64(view[at:at + 8 * n_cells], n_cells)
    at += 8 * n_cells
    tids = None
    if has_tids:
        tids = _column_u64(view[at:at + 8 * n_cells], n_cells)
        at += 8 * n_cells
    ports = _column_i32(view[at:at + 4 * n_cells], n_cells)
    at += 4 * n_cells
    return seq, PackedOutputs(n_cells, times, ports, view[at:], tids)


# ----------------------------------------------------------------------
# The safe recursive value codec (control frames)
# ----------------------------------------------------------------------
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_MAX_DEPTH = 64
_MAX_INT_OCTETS = 1 << 20


def _encode_value(value: Any, out: bytearray, depth: int = 0) -> None:
    if depth > _MAX_DEPTH:
        raise CodecError(f"value nesting deeper than {_MAX_DEPTH}")
    if value is None:
        out.append(0x4E)  # N
    elif value is True:
        out.append(0x54)  # T
    elif value is False:
        out.append(0x46)  # F
    elif type(value) is int:
        raw = value.to_bytes((value.bit_length() + 8) // 8,
                             "big", signed=True) if value else b""
        out.append(0x69)  # i
        out += _U32.pack(len(raw))
        out += raw
    elif type(value) is float:
        out.append(0x66)  # f
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(0x73)  # s
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(0x62)  # b
        out += _U32.pack(len(raw))
        out += raw
    elif type(value) is list:
        out.append(0x6C)  # l
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out, depth + 1)
    elif type(value) is tuple:
        out.append(0x74)  # t
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out, depth + 1)
    elif type(value) is dict:
        out.append(0x64)  # d
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode_value(key, out, depth + 1)
            _encode_value(item, out, depth + 1)
    else:
        raise CodecError(
            f"cannot encode {type(value).__name__!r} on the shard "
            "wire (supported: None/bool/int/float/str/bytes/"
            "list/tuple/dict)")


def _decode_value(view: memoryview, at: int,
                  depth: int = 0) -> Tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise CodecError(f"value nesting deeper than {_MAX_DEPTH}")
    if at >= len(view):
        raise CodecError(
            f"value truncated: no tag at octet {at}/{len(view)}")
    tag = view[at]
    at += 1
    if tag == 0x4E:
        return None, at
    if tag == 0x54:
        return True, at
    if tag == 0x46:
        return False, at
    if tag == 0x66:
        if at + 8 > len(view):
            raise CodecError(
                f"value truncated inside a float at octet {at}")
        return _F64.unpack_from(view, at)[0], at + 8
    if tag in (0x69, 0x73, 0x62, 0x6C, 0x74, 0x64):
        if at + 4 > len(view):
            raise CodecError(
                f"value truncated inside a length at octet {at}")
        (count,) = _U32.unpack_from(view, at)
        at += 4
        if tag == 0x69:
            if count > _MAX_INT_OCTETS:
                raise CodecError(f"int wider than {_MAX_INT_OCTETS} "
                                 "octets")
            if at + count > len(view):
                raise CodecError(
                    f"value truncated inside an int at octet {at}")
            raw = bytes(view[at:at + count])
            return int.from_bytes(raw, "big", signed=True), at + count
        if tag == 0x73:
            if at + count > len(view):
                raise CodecError(
                    f"value truncated inside a string at octet {at}")
            try:
                return (bytes(view[at:at + count]).decode("utf-8"),
                        at + count)
            except UnicodeDecodeError as exc:
                raise CodecError(f"corrupt utf-8 string: {exc}")
        if tag == 0x62:
            if at + count > len(view):
                raise CodecError(
                    f"value truncated inside bytes at octet {at}")
            return bytes(view[at:at + count]), at + count
        if count > len(view) - at:
            raise CodecError(
                f"container claims {count} item(s) but only "
                f"{len(view) - at} octet(s) remain")
        if tag in (0x6C, 0x74):
            items = []
            for _ in range(count):
                item, at = _decode_value(view, at, depth + 1)
                items.append(item)
            return (items if tag == 0x6C else tuple(items)), at
        mapping = {}
        for _ in range(count):
            key, at = _decode_value(view, at, depth + 1)
            item, at = _decode_value(view, at, depth + 1)
            try:
                mapping[key] = item
            except TypeError as exc:
                raise CodecError(f"unhashable dict key: {exc}")
        return mapping, at
    raise CodecError(f"unknown value tag 0x{tag:02X} at octet "
                     f"{at - 1}")


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def frame_header(kind: str, payload_len: int) -> bytes:
    """The 8-octet header for *kind* and a *payload_len*-octet body."""
    code = _KIND_TO_CODE.get(kind)
    if code is None:
        raise CodecError(f"unknown frame kind {kind!r}")
    return _HEADER.pack(MAGIC, VERSION, code, payload_len)


def parse_header(view) -> Tuple[int, int]:
    """Validate an 8-octet frame header; returns ``(kind_code,
    payload_len)``.

    A buffer that opens with a pickle opcode (0x80 PROTO) gets the
    explicit refusal message — the security property the transports
    inherit: nothing on the shard wire is ever unpickled.
    """
    if len(view) < HEADER_OCTETS:
        raise CodecError(
            f"frame header truncated: {len(view)}/{HEADER_OCTETS} "
            "octets")
    magic, version, kind_code, payload_len = _HEADER.unpack_from(
        view, 0)
    if magic != MAGIC:
        if view[0] == 0x80:
            raise CodecError(
                "refusing pickled frame (opens with pickle PROTO "
                "opcode 0x80) — the shard wire is codec-only")
        raise CodecError(
            f"bad frame magic 0x{magic:04X} (expected 0x{MAGIC:04X})")
    if version != VERSION:
        raise CodecError(
            f"unsupported codec version {version} (speaking "
            f"{VERSION})")
    if kind_code not in _CODE_TO_KIND:
        raise CodecError(f"unknown frame kind code {kind_code}")
    return kind_code, payload_len


def encode_frame(frame: Tuple[str, Any]) -> bytes:
    """One ``(kind, payload)`` frame as contiguous wire bytes
    (header + payload, ready for a single ``sendall``)."""
    try:
        kind, payload = frame
    except (TypeError, ValueError):
        raise CodecError(
            f"a frame is a (kind, payload) pair, got {frame!r}")
    code = _KIND_TO_CODE.get(kind)
    if code is None:
        raise CodecError(f"unknown frame kind {kind!r}")
    if code == _OPS_CODE:
        body = _encode_ops(*payload)
    elif code == _ACK_CODE:
        body = _encode_ack(*payload)
    else:
        out = bytearray()
        _encode_value(payload, out)
        body = bytes(out)
    return _HEADER.pack(MAGIC, VERSION, code, len(body)) + body


def decode_payload(kind_code: int, view: memoryview
                   ) -> Tuple[str, Any]:
    """Decode one payload given its already-validated header fields;
    returns the ``(kind, payload)`` frame."""
    if kind_code == _OPS_CODE:
        return "ops", _decode_ops(view)
    if kind_code == _ACK_CODE:
        return "ack", _decode_ack(view)
    value, at = _decode_value(view, 0)
    if at != len(view):
        raise CodecError(
            f"{len(view) - at} trailing octet(s) after the payload "
            "value")
    return _CODE_TO_KIND[kind_code], value


def decode_frame(data) -> Tuple[str, Any]:
    """Decode one whole frame (header + payload) from *data*.

    For ``ops``/``ack`` frames the payload views alias *data* — keep
    the buffer alive (and unmodified) while the frame is in use.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    kind_code, payload_len = parse_header(view)
    if len(view) != HEADER_OCTETS + payload_len:
        raise CodecError(
            f"frame length mismatch: header claims {payload_len} "
            f"payload octet(s), buffer carries "
            f"{len(view) - HEADER_OCTETS}")
    return decode_payload(kind_code, view[HEADER_OCTETS:])
