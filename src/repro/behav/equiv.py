"""Cross-level equivalence harness (behavioural twin vs RTL).

For each swappable DUT kind the harness builds the design twice — once
at ``level="rtl"`` (HDL kernel + conservative synchroniser), once at
``level="behav"`` (zero-delta twin) — replays the *identical* seeded
cell stream through both, and diffs everything the common contract
exposes:

* **output cell streams**, per port, in order (cell equality ignores
  ``trace_id``; timestamps are *not* compared — the RTL carries a
  constant start-up offset the latency model does not reproduce);
* **charging records** (accounting unit) as the raw 6-tuples, in the
  RTL's registration/FIFO order;
* **policing decisions** (UPC policer) as ``(vpi, vci, conforming)``
  sequences — the GCRA is shift-invariant in the absolute clock, so
  verdicts must match even though the raw clock stamps differ by the
  RTL's start-up offset;
* **management-plane counters** (the ``counters()`` dict both levels
  implement with identical keys).

Stimulus is slot-aligned — cells land on whole cell-time boundaries
with gaps of at least one cell slot — which is the regime where the
fixed latency model is exact (no partial-cell interleaving exists at
cell granularity) and GCRA shift-invariance holds.  The stream mixes
known connections, unknown VPI/VCI, idle cells, random CLP/PT bits and
random payload octets; the accounting run additionally closes two
tariff intervals mid-stream and at the end.

:func:`run_equivalence` returns one machine-readable report dict
(``python -m repro equiv`` serialises it to JSON).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..atm.cell import AtmCell
from ..core.environment import CoVerificationEnvironment
from ..core.timebase import TimeBase
from .factory import DutHandle, KINDS, build_dut

__all__ = ["run_equivalence", "make_events", "run_kind"]

#: VPI/VCI pair installed at no kind — exercises the unknown paths
UNKNOWN_CONNECTION = (9, 999)

#: events per tuple: ("cell", slot, in_port, AtmCell) or
#: ("tick", slot, 0, None)
Event = Tuple[str, int, int, Optional[AtmCell]]


def _setup_port_module(design, timebase: TimeBase,
                       num_ports: int) -> List[List[Tuple[int, int]]]:
    """Install the port-module translation table; returns the known
    connections per input port."""
    for j in range(4):
        design.install(1, 100 + j, 2, 200 + j)
    return [[(1, 100 + j) for j in range(4)]]


def _setup_switch(design, timebase: TimeBase,
                  num_ports: int) -> List[List[Tuple[int, int]]]:
    """Install a ring routing table (input i → output (i+1) mod N):
    each output is fed by exactly one input, so per-output cell order
    is deterministic regardless of fabric arbitration."""
    for i in range(num_ports):
        design.install_connection(i, 1, 100 + i,
                                  (i + 1) % num_ports, 2, 200 + i)
    return [[(1, 100 + i)] for i in range(num_ports)]


def _setup_policer(design, timebase: TimeBase,
                   num_ports: int) -> List[List[Tuple[int, int]]]:
    """Install GCRA contracts in whole cell slots (T and tau as
    multiples of the 53-clock cell time — the slot-aligned regime
    where cross-level verdicts are provably identical); connection
    (1, 103) stays unpoliced."""
    cpc = timebase.clocks_per_cell
    design.install_contract(1, 100, 2 * cpc, 0)
    design.install_contract(1, 101, 3 * cpc, cpc)
    design.install_contract(1, 102, 5 * cpc, 2 * cpc)
    return [[(1, 100 + j) for j in range(4)]]


def _setup_accounting(design, timebase: TimeBase,
                      num_ports: int) -> List[List[Tuple[int, int]]]:
    """Register four connections with distinct tariffs."""
    for j in range(4):
        design.register(1, 100 + j, units_per_cell=j + 1,
                        units_per_cell_clp1=j, fixed_units=2 * j)
    return [[(1, 100 + j) for j in range(4)]]


_SETUPS = {
    "port_module": _setup_port_module,
    "switch": _setup_switch,
    "policer": _setup_policer,
    "accounting": _setup_accounting,
}


def make_events(rng: random.Random, cells: int,
                connections: Sequence[Sequence[Tuple[int, int]]],
                with_ticks: bool = False) -> List[Event]:
    """Generate one seeded, slot-aligned stimulus stream.

    Cells land on strictly increasing whole cell slots (gap 1..4
    slots); each is an idle cell (~8%), an unknown connection (~10%)
    or a random known connection of its input port, with random
    PT/CLP bits and a random payload prefix.  With *with_ticks*, a
    tariff tick is inserted mid-stream and appended at the end, each
    padded three empty slots away from the nearest cell so interval
    attribution cannot race the in-flight serialisation at either
    level.
    """
    num_ports = len(connections)
    events: List[Event] = []
    slot = 0
    half = cells // 2
    for i in range(cells):
        if with_ticks and i == half:
            events.append(("tick", slot + 3, 0, None))
            slot += 6
        slot += rng.randint(1, 4)
        port = rng.randrange(num_ports)
        roll = rng.random()
        if roll < 0.08:
            cell: AtmCell = AtmCell.idle()
        else:
            if roll < 0.18:
                vpi, vci = UNKNOWN_CONNECTION
            else:
                vpi, vci = rng.choice(list(connections[port]))
            payload = [rng.randrange(256) for _ in range(4)]
            cell = AtmCell.with_payload(vpi, vci, payload,
                                        pt=rng.randrange(8),
                                        clp=rng.randint(0, 1))
        events.append(("cell", slot, port, cell))
    if with_ticks:
        events.append(("tick", slot + 4, 0, None))
    return events


def _run_level(kind: str, level: str, events: Sequence[Event],
               clocking: str, num_ports: int) -> Tuple[
                   CoVerificationEnvironment, DutHandle]:
    """Build the DUT at *level* and replay *events* through it."""
    env = CoVerificationEnvironment(name=f"equiv.{kind}.{level}",
                                    clocking=clocking, observe=False,
                                    dut_level=level)
    config = {"num_ports": num_ports} if kind == "switch" else {}
    handle = build_dut(env, kind, name=f"{kind}_{level}", **config)
    _SETUPS[kind](handle.design, env.timebase, num_ports)
    cell_s = env.timebase.cell_time_seconds
    for ev, slot, port, cell in events:
        t = slot * cell_s
        if ev == "cell":
            handle.entities[port].send_cell(t, cell)
        else:
            handle.entity.send_tariff_tick(t)
        for entity in handle.entities:
            entity.advance_time(t)
    t_end = (events[-1][1] + 8) * cell_s
    for entity in handle.entities:
        entity.finish(t_end)
    if handle.level == "rtl" and kind == "accounting":
        # Stream the queued record words off the bus (RECORD_WORDS
        # per record, one word per clock).
        env.hdl.run(until=env.hdl.now
                    + 256 * env.timebase.clock_period_ticks)
    env.close()
    return env, handle


def _cell_brief(cell: AtmCell) -> Dict[str, int]:
    """Compact header view of one cell for mismatch reporting."""
    return {"vpi": cell.vpi, "vci": cell.vci, "pt": cell.pt,
            "clp": cell.clp, "gfc": cell.gfc}


def _diff_sequences(rtl: Sequence, behav: Sequence,
                    describe=repr) -> Dict[str, object]:
    """Position-wise diff of two sequences; reports counts and the
    first few mismatching positions."""
    mismatches: List[Dict[str, object]] = []
    for index, (a, b) in enumerate(zip(rtl, behav)):
        if a != b:
            mismatches.append({"index": index, "rtl": describe(a),
                               "behav": describe(b)})
            if len(mismatches) >= 5:
                break
    matched = (len(rtl) == len(behav)) and not mismatches
    return {
        "matched": matched,
        "rtl_count": len(rtl),
        "behav_count": len(behav),
        "mismatches": mismatches,
    }


def run_kind(kind: str, cells: int = 64, seed: int = 0,
             clocking: str = "cycle") -> Dict[str, object]:
    """Replay one seeded stream through *kind* at both levels and
    diff the contract surface; returns the per-kind report entry."""
    if kind not in KINDS:
        raise ValueError(
            f"unknown DUT kind {kind!r}; known: {', '.join(KINDS)}")
    num_ports = 4 if kind == "switch" else 1
    rng = random.Random(seed)
    if kind == "switch":
        connections = [[(1, 100 + i)] for i in range(num_ports)]
    else:
        connections = [[(1, 100 + j) for j in range(4)]]
    events = make_events(rng, cells, connections,
                         with_ticks=(kind == "accounting"))
    _, rtl = _run_level(kind, "rtl", events, clocking, num_ports)
    _, behav = _run_level(kind, "behav", events, clocking, num_ports)

    streams = [
        _diff_sequences(
            [cell for _, cell in rtl.entities[port].output_cells],
            [cell for _, cell in behav.entities[port].output_cells],
            describe=_cell_brief)
        for port in range(len(rtl.entities))
    ]
    records = _diff_sequences(rtl.records(), behav.records(),
                              describe=list)
    decisions = _diff_sequences(
        [(d.vpi, d.vci, d.conforming) for d in rtl.decisions()],
        [(d.vpi, d.vci, d.conforming) for d in behav.decisions()],
        describe=list)
    counters = {
        "matched": rtl.counters() == behav.counters(),
        "rtl": rtl.counters(),
        "behav": behav.counters(),
    }
    passed = (all(s["matched"] for s in streams)
              and records["matched"] and decisions["matched"]
              and counters["matched"])
    return {
        "kind": kind,
        "cells": cells,
        "seed": seed,
        "ports": len(rtl.entities),
        "streams": streams,
        "records": records,
        "decisions": decisions,
        "counters": counters,
        "passed": passed,
    }


def run_equivalence(kinds: Sequence[str] = KINDS, cells: int = 64,
                    seed: int = 0,
                    clocking: str = "cycle") -> Dict[str, object]:
    """Run the cross-level equivalence suite over *kinds*.

    Each kind gets its own seeded stream (derived from *seed*);
    the returned report is machine-readable and JSON-serialisable::

        {"benchmark": "equiv", "clocking": ..., "seed": ...,
         "duts": {kind: {...per-kind entry...}},
         "passed": true|false}
    """
    report: Dict[str, object] = {
        "benchmark": "equiv",
        "clocking": clocking,
        "seed": seed,
        "cells": cells,
        "duts": {},
        "passed": True,
    }
    for offset, kind in enumerate(kinds):
        entry = run_kind(kind, cells=cells, seed=seed + 7919 * offset,
                         clocking=clocking)
        report["duts"][kind] = entry          # type: ignore[index]
        report["passed"] = bool(report["passed"]) and entry["passed"]
    return report
