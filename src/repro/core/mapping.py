"""Conversion-function library: abstract data types ↔ bit level (§3.2).

"The user has to specify how high-level protocol data units and
abstract data types has to be mapped to bit-level signals using
appropriate conversion functions that are provided in the CASTANET
library."

:class:`StructMapper` is the generic device — a declarative field list
(the C-struct of Figure 4) packed to/from octet streams —
and :class:`CellMapper` the ATM-specific instance mapping network-
simulator packets to the 53-octet cell image plus its control-signal
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..atm.cell import AtmCell, CELL_OCTETS
from ..netsim.packet import Packet

__all__ = ["FieldSpec", "StructMapper", "CellMapper", "MappingError"]


class MappingError(ValueError):
    """Raised for values that do not fit their declared field."""


@dataclass(frozen=True)
class FieldSpec:
    """One field of an abstract data type: a name and a bit width."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise MappingError(f"field {self.name!r} needs >= 1 bit")


class StructMapper:
    """Packs a dict of named integer fields into octets and back.

    Fields are laid out MSB-first in declaration order and padded to a
    whole number of octets.

    Example:
        >>> mapper = StructMapper([FieldSpec("VPI", 8),
        ...                        FieldSpec("VCI", 16)])
        >>> mapper.pack({"VPI": 1, "VCI": 0x0203})
        [1, 2, 3]
    """

    def __init__(self, fields: Sequence[FieldSpec]) -> None:
        if not fields:
            raise MappingError("a struct needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise MappingError(f"duplicate field names in {names}")
        self.fields = tuple(fields)
        self.total_bits = sum(f.bits for f in fields)
        self.total_octets = (self.total_bits + 7) // 8

    def pack(self, values: Dict[str, int]) -> List[int]:
        """Dict -> octet list (zero-padded to the octet boundary)."""
        accumulator = 0
        for spec in self.fields:
            try:
                value = values[spec.name]
            except KeyError:
                raise MappingError(
                    f"missing field {spec.name!r}") from None
            if not 0 <= value < (1 << spec.bits):
                raise MappingError(
                    f"field {spec.name!r} value {value} does not fit in "
                    f"{spec.bits} bits")
            accumulator = (accumulator << spec.bits) | value
        pad = self.total_octets * 8 - self.total_bits
        accumulator <<= pad
        return [(accumulator >> (8 * (self.total_octets - 1 - i))) & 0xFF
                for i in range(self.total_octets)]

    def unpack(self, octets: Sequence[int]) -> Dict[str, int]:
        """Octet list -> dict (inverse of :meth:`pack`)."""
        if len(octets) != self.total_octets:
            raise MappingError(
                f"expected {self.total_octets} octets, got {len(octets)}")
        accumulator = 0
        for octet in octets:
            if not 0 <= octet <= 0xFF:
                raise MappingError(f"octet {octet} out of range")
            accumulator = (accumulator << 8) | octet
        pad = self.total_octets * 8 - self.total_bits
        accumulator >>= pad
        values: Dict[str, int] = {}
        remaining = self.total_bits
        for spec in self.fields:
            remaining -= spec.bits
            values[spec.name] = (accumulator >> remaining) \
                & ((1 << spec.bits) - 1)
        return values


class CellMapper:
    """ATM-cell instance of the abstraction interface (Figure 4).

    Maps network-simulator packets carrying VPI/VCI/... fields to the
    53-octet bit-level image (and back), and describes the generated
    control signals: the first octet of each cell is accompanied by a
    one-clock ``cellsync`` pulse.
    """

    octets_per_cell = CELL_OCTETS

    def packet_to_octets(self, packet: Packet) -> List[int]:
        """Abstract packet -> 53-octet wire image (HEC generated)."""
        return AtmCell.from_packet(packet).to_octets()

    def octets_to_packet(self, octets: Sequence[int],
                         verify_hec: bool = True) -> Packet:
        """53-octet wire image -> abstract packet."""
        return AtmCell.from_octets(octets, verify_hec=verify_hec) \
            .to_packet()

    def cell_to_octets(self, cell: AtmCell) -> List[int]:
        """AtmCell -> wire image."""
        return cell.to_octets()

    def octets_to_cell(self, octets: Sequence[int],
                       verify_hec: bool = True) -> AtmCell:
        """Wire image -> AtmCell."""
        return AtmCell.from_octets(octets, verify_hec=verify_hec)

    def control_schedule(self) -> List[Tuple[str, int]]:
        """The generated control signals: (signal, clock offset within
        the cell transfer).  ``cellsync`` pulses with octet 0."""
        return [("cellsync", 0)]
