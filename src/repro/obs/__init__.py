"""Observability layer for the co-verification stack.

Counters, histograms and span timers (:mod:`repro.obs.metrics`), a
structured JSON-lines trace of co-simulation decisions
(:mod:`repro.obs.trace`), causal cell provenance across the
abstraction interface (:mod:`repro.obs.provenance`), Chrome/Perfetto
trace export (:mod:`repro.obs.chrome`), kernel hot-path profiling
hooks (:mod:`repro.obs.profile`) and the observed E1 reference
scenario behind ``python -m repro stats`` (:mod:`repro.obs.scenario`
— imported lazily to keep this package free of a dependency cycle
with :mod:`repro.core`).

Wiring: :class:`repro.core.CoVerificationEnvironment` owns a
:class:`MetricsRegistry` (pass ``observe=False`` for the null
registry) and a :class:`ProvenanceTracker` (``provenance_sample``
knob) and hands instruments to the synchronisers and co-simulation
entities; ``env.metrics()`` composes the registry snapshot with the
kernel statistics of both simulators.  Metric names and the trace
schema are documented in DESIGN.md §"Observability".

Distributed telemetry (:mod:`repro.obs.distributed` /
:mod:`repro.obs.merge`): each shard worker builds one plain-data
telemetry payload (registry snapshot, provenance spans, coverage
counters) shipped over the shard wire's tag codec; the merge layer
folds N payloads into one coherent view, and the Chrome exporter
renders shard-labelled records as one Perfetto process group per
shard with cross-process flow arrows.
"""

from .chrome import (ChromeTraceError, export_chrome_trace,
                     flow_processes, flow_tracks, load_trace_jsonl,
                     validate_chrome_trace)
from .distributed import (TELEMETRY_SCHEMA, build_telemetry,
                          coverage_snapshot, fsm_coverage,
                          hop_tail_coverage, residual_backlog,
                          spans_from_tracker, sync_window_coverage)
from .merge import (merge_counters, merge_coverage, merge_histograms,
                    merge_instrument_snapshots, merge_spans,
                    merge_telemetry, merge_trace_records)
from .metrics import (Counter, DEFAULT_SECONDS_BOUNDS, Histogram,
                      MetricsRegistry, NULL_REGISTRY, SpanTimer)
from .profile import PROFILE_METRICS, attach_profiling, detach_profiling
from .provenance import HOPS, ProvenanceTracker, TRACE_ID_FIELD
from .trace import TraceWriter

__all__ = ["ChromeTraceError", "Counter", "DEFAULT_SECONDS_BOUNDS",
           "HOPS", "Histogram", "MetricsRegistry", "NULL_REGISTRY",
           "PROFILE_METRICS", "ProvenanceTracker", "SpanTimer",
           "TELEMETRY_SCHEMA", "TRACE_ID_FIELD", "TraceWriter",
           "attach_profiling", "build_telemetry", "coverage_snapshot",
           "detach_profiling", "export_chrome_trace",
           "flow_processes", "flow_tracks", "fsm_coverage",
           "hop_tail_coverage", "load_trace_jsonl", "merge_counters",
           "merge_coverage", "merge_histograms",
           "merge_instrument_snapshots", "merge_spans",
           "merge_telemetry", "merge_trace_records",
           "residual_backlog", "spans_from_tracker",
           "sync_window_coverage", "validate_chrome_trace"]
