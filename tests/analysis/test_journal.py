"""Tests for the run journal."""

import pytest

from repro.analysis import RunJournal


def test_log_and_filter():
    journal = RunJournal()
    journal.log(1.0, "cell", "first")
    journal.log(2.0, "hdl", "second")
    journal.log(3.0, "cell", "third")
    assert len(journal) == 3
    assert [e.message for e in journal.entries(category="cell")] \
        == ["first", "third"]
    assert [e.message for e in journal.entries(since=2.0)] \
        == ["second", "third"]
    assert journal.categories() == ["cell", "hdl"]


def test_capacity_eviction():
    journal = RunJournal(capacity=3)
    for i in range(5):
        journal.log(float(i), "x", f"m{i}")
    assert len(journal) == 3
    assert journal.dropped == 2
    assert journal.entries()[0].message == "m2"
    assert "evicted" in journal.render()


def test_invalid_capacity():
    with pytest.raises(ValueError):
        RunJournal(capacity=0)


def test_render_and_save(tmp_path):
    journal = RunJournal()
    journal.log(0.5, "cell", "hello")
    text = journal.render()
    assert "cell" in text and "hello" in text
    path = tmp_path / "run.journal"
    journal.save(path)
    assert "hello" in path.read_text()


def test_attach_tap_records_packets():
    from repro.core import TapModule
    from repro.netsim import Network, Packet
    journal = RunJournal()
    net = Network()
    node = net.add_node("n")
    tap = TapModule("tap", forward=False)
    node.add_module(tap)
    journal.attach_tap(tap)
    tap.receive(Packet(fields={"VPI": 1, "VCI": 100}), 0)
    (entry,) = journal.entries()
    assert "VPI=1" in entry.message
    assert "VCI=100" in entry.message


def test_attach_hdl_signals():
    from repro.hdl import Simulator
    journal = RunJournal()
    sim = Simulator()
    watched = sim.signal("watched", width=4, init=0)
    ignored = sim.signal("ignored", init="0")
    journal.attach_hdl_signals(sim, [watched])
    watched.drive(5, delay=3)
    ignored.drive("1", delay=4)
    sim.run(until=10)
    entries = journal.entries(category="hdl")
    assert len(entries) == 1
    assert "watched -> 0101" in entries[0].message


def test_note_report():
    from repro.core import StreamComparator
    journal = RunJournal()
    comparator = StreamComparator("t")
    comparator.add_reference(1)
    comparator.add_observed(1)
    journal.note_report(5.0, comparator.compare())
    (entry,) = journal.entries(category="compare")
    assert "PASS" in entry.message
