"""Event-driven HDL simulation kernel (the Synopsys VSS substitute).

Nine-value ``std_logic`` signals with multi-driver resolution, VHDL
delta-cycle semantics, callback (RTL) and generator (test bench)
processes, clock generators, VCD waveform dumping and test-bench
helpers.
"""

from .assertions import (AssertionEngine, AssertionFailure,
                         HdlAssertionError, ToggleCoverage, ValueCoverage)
from .compiled import (CombinationalCycleError, CompileContext,
                       CompileError, CompiledKernel, Slot,
                       UnsupportedFeature, compile_kernel, raw_value,
                       slot_int)
from .cycle import CycleEngine
from .logic import (LogicError, STD_LOGIC_VALUES, bits, is_defined,
                    resolve, resolve_many, to_vector, vector_to_int)
from .processes import (CallbackProcess, FallingEdge, GeneratorProcess,
                        Process, ProcessError, RisingEdge)
from .signal import DriveError, Signal
from .simulator import (CombinationalLoopError, SimulationError, Simulator,
                        WaveformStream)
from .testbench import (Scoreboard, ScoreboardError, SignalMonitor,
                        clocked_driver, drive_sequence)
from .vcd import VcdWriter
from .wave import (VcdData, VcdFormatError, WaveformDifference,
                   compare_waveforms)

__all__ = [
    "AssertionEngine", "AssertionFailure", "HdlAssertionError",
    "ToggleCoverage", "ValueCoverage",
    "CombinationalCycleError", "CompileContext", "CompileError",
    "CompiledKernel", "Slot", "UnsupportedFeature", "compile_kernel",
    "raw_value", "slot_int",
    "CycleEngine",
    "LogicError", "STD_LOGIC_VALUES", "bits", "is_defined", "resolve",
    "resolve_many", "to_vector", "vector_to_int",
    "CallbackProcess", "FallingEdge", "GeneratorProcess", "Process",
    "ProcessError", "RisingEdge",
    "DriveError", "Signal",
    "CombinationalLoopError", "SimulationError", "Simulator",
    "WaveformStream",
    "Scoreboard", "ScoreboardError", "SignalMonitor", "clocked_driver",
    "drive_sequence",
    "VcdWriter",
    "VcdData", "VcdFormatError", "WaveformDifference",
    "compare_waveforms",
]
