"""Sharded multi-switch co-simulation and the scenario job service.

This package scales the paper's one-netsim/one-HDL-kernel coupling to
*N DUT shards in N processes*, coupled by the existing conservative
protocol carried over pipes or sockets, plus a persistent job service
(``python -m repro serve``) that turns the one-shot sweep runner into
a long-lived scenario server.

Layers (bottom up):

* :mod:`~repro.shard.codec` — the binary zero-copy frame codec
  (struct-packed headers, columnar :class:`OpBatch`/:class:`PackedOps`
  op payloads, a safe tag codec for control values; nothing on the
  wire is ever pickled — foreign bytes raise :class:`CodecError`).
* :mod:`~repro.shard.transport` — frame transports
  (:class:`PipeTransport`, :class:`SocketTransport`, the same-host
  shared-memory :class:`ShmRingTransport` built via
  :func:`shm_ring_pair`) with precise EOF reporting
  (:class:`TransportClosed`) and frame/octet counters.
* :mod:`~repro.shard.protocol` — the op-log replay wire protocol:
  cells/nulls/ticks as compact ops, batched into frames, with full
  remote tracebacks on failure (:class:`ShardError`).
* :mod:`~repro.shard.group` — :class:`ShardGroup`, one shard's
  switch + accounting DUTs behind the single replay path both the
  worker process and the local reference mode share (the
  byte-identity guarantee lives here).
* :mod:`~repro.shard.worker` — the worker-process frame loop.
* :mod:`~repro.shard.client` — :class:`ShardHandle` (pipelined
  remote driving), :class:`LocalShardHandle` (in-process reference)
  and :class:`ShardPortEndpoint` (a shard port as a
  :class:`~repro.core.contract.DutContract`).
* :mod:`~repro.shard.topology` — :class:`TopologySpec` (TOML/JSON),
  :class:`ShardedTopology` (the process fleet) and
  :func:`run_topology` (the mode-agnostic windowed driver).
* :mod:`~repro.shard.service` — :class:`JobService` /
  :class:`ServeClient`, the persistent job service.

See ``docs/api/shard.md`` for the reference page and
``docs/architecture.md`` ("Sharded topologies and the job service")
for the design walk-through.
"""

from .client import LocalShardHandle, ShardHandle, ShardPortEndpoint
from .codec import (CodecError, OpBatch, OutputBatch, PackedOps,
                    PackedOutputs, decode_frame, encode_frame)
from .group import ShardGroup
from .protocol import ShardError
from .service import JobService, ServeClient
from .topology import (MODES, ShardedTopology, ShardSpec,
                       ShardSpecError, TopologySpec, TRANSPORTS,
                       run_topology)
from .transport import (PipeTransport, ShmRingTransport,
                        SocketTransport, Transport, TransportClosed,
                        TransportError, shm_ring_pair)
from .worker import (shard_worker_main, shard_worker_shm_main,
                     shard_worker_socket_main)

__all__ = [
    "ShardHandle", "LocalShardHandle", "ShardPortEndpoint",
    "ShardGroup", "ShardError",
    "CodecError", "OpBatch", "PackedOps",
    "OutputBatch", "PackedOutputs",
    "encode_frame", "decode_frame",
    "JobService", "ServeClient",
    "ShardSpec", "TopologySpec", "ShardSpecError", "ShardedTopology",
    "run_topology", "TRANSPORTS", "MODES",
    "Transport", "PipeTransport", "SocketTransport",
    "ShmRingTransport", "shm_ring_pair",
    "TransportError", "TransportClosed",
    "shard_worker_main", "shard_worker_socket_main",
    "shard_worker_shm_main",
]
