"""Smoke tests: every example script runs to a zero exit code.

The examples are documentation that executes; a broken example is a
broken promise in the README.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5
    assert "quickstart" in EXAMPLES


def test_topology_example_spec_loads_and_runs():
    """examples/topology_two_switch.toml is live documentation: it
    must parse into a valid TopologySpec and run to matching digests
    in the in-process reference mode."""
    from repro.shard import TopologySpec, run_topology
    from repro.shard.topology import _toml

    path = EXAMPLES_DIR / "topology_two_switch.toml"
    assert path.is_file()
    if _toml is None:
        pytest.skip("no TOML reader on this interpreter")
    spec = TopologySpec.from_file(path)
    assert [s.id for s in spec.shards] == ["edge", "core"]
    assert spec.chain
    spec.cells = 8  # keep the smoke fast; the shape is what matters
    report = run_topology(spec, mode="local")
    assert report["totals"]["output_cells"] > 0
    assert report["digest"] == run_topology(spec,
                                            mode="local")["digest"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    path = EXAMPLES_DIR / f"{name}.py"
    try:
        runpy.run_path(str(path), run_name="__main__")
        code = 0
    except SystemExit as exc:
        code = int(exc.code or 0)
    out = capsys.readouterr().out
    assert code == 0, f"{name} exited {code}; output:\n{out}"
    assert "PROBLEM" not in out
    assert "FAIL]" not in out.replace("[FAIL] accounting-rtl-buggy", "")
