"""Microprocessor register-bus interface.

The paper's board section calls out that "the hardware test board
allows to interface unidirectional hardware ports as well as
bidirectional ports, e.g. µP or bus interfaces" — real ATM devices are
configured by embedded control software through exactly such a bus.

This module provides the hardware side of that picture:

* :class:`MpBusSlavePort` — the signal bundle of a simple synchronous
  register bus (address, write data, read data, rd/wr strobes, ready);
* :class:`MpBusMaster` — a blocking bus-functional model for test
  benches (issue ``write``/``read`` transactions, the simulator is
  advanced until the slave responds);
* :class:`AccountingMgmtSlave` — maps the accounting unit's
  management plane (connection registration, tariff ticks, status and
  counters) onto bus registers, so the DUT is configured the way the
  real chip would be: by software, over its µP port.

Register map (all 16-bit):

====== ============ =====================================================
addr   name         function
====== ============ =====================================================
0x00   CTRL         write 1: register staged connection; write 2:
                    tariff tick; write 3: clear status
0x01   VPI          staging: connection VPI
0x02   VCI          staging: connection VCI
0x03   UPC          staging: charge units per CLP0 cell
0x04   UPC1         staging: charge units per CLP1 cell
0x05   FIXED        staging: fixed units per interval
0x10   STATUS       read: 1 = last op OK, 2 = last op failed, 0 = idle
0x11   CONN_COUNT   read: registered connections
0x12   CELLS_LO     read: cells_seen & 0xFFFF
0x13   CELLS_HI     read: cells_seen >> 16
0x14   INTERVAL     read: current tariff interval index
====== ============ =====================================================
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .accounting_unit import AccountingUnitRtl
from .component import Component

__all__ = ["MpBusSlavePort", "MpBusMaster", "AccountingMgmtSlave",
           "REG_CTRL", "REG_VPI", "REG_VCI", "REG_UPC", "REG_UPC1",
           "REG_FIXED", "REG_STATUS", "REG_CONN_COUNT", "REG_CELLS_LO",
           "REG_CELLS_HI", "REG_INTERVAL",
           "CTRL_REGISTER", "CTRL_TICK", "CTRL_CLEAR",
           "STATUS_IDLE", "STATUS_OK", "STATUS_FAIL"]

REG_CTRL = 0x00
REG_VPI = 0x01
REG_VCI = 0x02
REG_UPC = 0x03
REG_UPC1 = 0x04
REG_FIXED = 0x05
REG_STATUS = 0x10
REG_CONN_COUNT = 0x11
REG_CELLS_LO = 0x12
REG_CELLS_HI = 0x13
REG_INTERVAL = 0x14

CTRL_REGISTER = 1
CTRL_TICK = 2
CTRL_CLEAR = 3

STATUS_IDLE = 0
STATUS_OK = 1
STATUS_FAIL = 2


class MpBusSlavePort:
    """The signal bundle of the register bus (slave view)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.addr = sim.signal(f"{name}.addr", width=8, init=0)
        self.wdata = sim.signal(f"{name}.wdata", width=16, init=0)
        self.rdata = sim.signal(f"{name}.rdata", width=16, init=0)
        self.rd = sim.signal(f"{name}.rd", init="0")
        self.wr = sim.signal(f"{name}.wr", init="0")
        self.ready = sim.signal(f"{name}.ready", init="0")


class MpBusMaster:
    """Blocking bus-functional model driving a slave port.

    Each transaction asserts the strobe with address (and data) for
    one clock and then advances the simulator until the slave raises
    ``ready`` (bounded by *timeout_clocks*).
    """

    def __init__(self, sim: Simulator, clk: Signal,
                 port: MpBusSlavePort, timeout_clocks: int = 64,
                 clock_period: int = 10) -> None:
        self.sim = sim
        self.clk = clk
        self.port = port
        self.timeout_clocks = timeout_clocks
        self.period = clock_period
        self.transactions = 0

    def write(self, addr: int, data: int) -> None:
        """One register write; blocks until the slave acknowledges."""
        self.port.addr.drive(addr)
        self.port.wdata.drive(data)
        self.port.wr.drive("1")
        self._await_ready()
        self.port.wr.drive("0")
        self.sim.run(until=self.sim.now + self.period)
        self.transactions += 1

    def read(self, addr: int) -> int:
        """One register read; returns the slave's data."""
        self.port.addr.drive(addr)
        self.port.rd.drive("1")
        self._await_ready()
        value = self.port.rdata.as_int()
        self.port.rd.drive("0")
        self.sim.run(until=self.sim.now + self.period)
        self.transactions += 1
        return value

    def _await_ready(self) -> None:
        for _ in range(self.timeout_clocks):
            self.sim.run(until=self.sim.now + self.period)
            if self.port.ready.value == "1":
                return
        raise TimeoutError(
            f"bus slave {self.port.name} did not raise ready within "
            f"{self.timeout_clocks} clocks")


class AccountingMgmtSlave(Component):
    """Register-bus management interface of the accounting unit.

    Wraps an :class:`~repro.rtl.accounting_unit.AccountingUnitRtl`:
    bus writes stage and commit connection registrations and trigger
    tariff ticks; bus reads expose status and counters.  ``ready``
    pulses one clock after each accepted strobe.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 unit: AccountingUnitRtl,
                 port: Optional[MpBusSlavePort] = None,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        self.unit = unit
        self.port = port if port is not None \
            else MpBusSlavePort(sim, f"{name}.bus")
        self._staging: Dict[int, int] = {
            REG_VPI: 0, REG_VCI: 0, REG_UPC: 1, REG_UPC1: 0,
            REG_FIXED: 0}
        self._status = STATUS_IDLE
        self._strobe_seen = False
        #: set by a CTRL_TICK write; the executing process (event or
        #: compiled) turns it into the actual tariff_tick pulse, so
        #: :meth:`_write` stays free of signal side effects
        self._tick_request = False
        self._tick_pending = False
        self.writes = 0
        self.reads = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    def _tick(self) -> None:
        if self._tick_pending:
            # complete the one-clock tariff pulse started last edge
            self.unit.tariff_tick.drive("0")
            self._tick_pending = False
        port = self.port
        wr = port.wr.value == "1"
        rd = port.rd.value == "1"
        if not (wr or rd):
            port.ready.drive("0")
            self._strobe_seen = False
            return
        if self._strobe_seen:
            # strobe held while master waits for ready: no re-execute
            port.ready.drive("0")
            return
        self._strobe_seen = True
        addr = vector_to_int(port.addr.value)
        if wr:
            self._write(addr, vector_to_int(port.wdata.value))
            if self._tick_request:
                # pulse the unit's tariff_tick input for one clock;
                # the unit samples it at the next rising edge
                self._tick_request = False
                self.unit.tariff_tick.drive("1")
                self._tick_pending = True
        else:
            port.rdata.drive(self._read(addr))
        port.ready.drive("1")

    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick`; register semantics are
        shared through the pure :meth:`_write` / :meth:`_read`."""
        port = self.port
        wr_slot = ctx.read(port.wr)
        rd_slot = ctx.read(port.rd)
        addr_slot = ctx.read(port.addr)
        wdata_slot = ctx.read(port.wdata)
        w_ready = ctx.write(port.ready)
        w_rdata = ctx.write(port.rdata)
        w_tick = ctx.write(self.unit.tariff_tick)

        def evaluate():
            if self._tick_pending:
                w_tick("0")
                self._tick_pending = False
            wr = wr_slot.value == "1"
            rd = rd_slot.value == "1"
            if not (wr or rd):
                w_ready("0")
                self._strobe_seen = False
                return
            if self._strobe_seen:
                w_ready("0")
                return
            self._strobe_seen = True
            addr = slot_int(addr_slot.value)
            if wr:
                self._write(addr, slot_int(wdata_slot.value))
                if self._tick_request:
                    self._tick_request = False
                    w_tick("1")
                    self._tick_pending = True
            else:
                w_rdata(self._read(addr))
            w_ready("1")

        return evaluate

    # ------------------------------------------------------------------
    # Register semantics
    # ------------------------------------------------------------------
    def _write(self, addr: int, data: int) -> None:
        self.writes += 1
        if addr in self._staging:
            self._staging[addr] = data
            return
        if addr != REG_CTRL:
            self._status = STATUS_FAIL
            return
        if data == CTRL_REGISTER:
            try:
                self.unit.register(
                    self._staging[REG_VPI], self._staging[REG_VCI],
                    units_per_cell=self._staging[REG_UPC],
                    units_per_cell_clp1=self._staging[REG_UPC1],
                    fixed_units=self._staging[REG_FIXED])
                self._status = STATUS_OK
            except ValueError:
                self._status = STATUS_FAIL
        elif data == CTRL_TICK:
            self._tick_request = True
            self._status = STATUS_OK
        elif data == CTRL_CLEAR:
            self._status = STATUS_IDLE
        else:
            self._status = STATUS_FAIL

    def _read(self, addr: int) -> int:
        self.reads += 1
        if addr in self._staging:
            return self._staging[addr]
        if addr == REG_STATUS:
            return self._status
        if addr == REG_CONN_COUNT:
            return self.unit.connection_count & 0xFFFF
        if addr == REG_CELLS_LO:
            return self.unit.cells_seen & 0xFFFF
        if addr == REG_CELLS_HI:
            return (self.unit.cells_seen >> 16) & 0xFFFF
        if addr == REG_INTERVAL:
            return self.unit.interval & 0xFFFF
        return 0xDEAD
