"""Wire protocol between the shard coordinator and shard workers.

The protocol is an *op-log replay* discipline.  The coordinator never
talks to the worker's DUT objects directly; it records the exact
sequence of co-simulation operations it would have applied locally —
cells, null messages (timing windows), tariff ticks — and ships them
in batched ``FRAME_OPS`` frames.  The worker replays the ops verbatim
into its :class:`~repro.shard.group.ShardGroup`.  Because the local
reference mode (:class:`~repro.shard.client.LocalShardHandle`) applies
the *identical* op stream through the *same* ``ShardGroup`` code path,
a sharded topology is byte-identical to a single-process run by
construction — batching only changes how many frames carry the ops,
never which ops arrive.

Ops (compact tuples, first element is the op code):

* ``(OP_CELL, t, port, payload)`` — deliver an ATM cell (53 octets,
  ``bytes``) to the switch ingress *port* at netsim time *t*.
* ``(OP_NULL, t)`` — a null message: the conservative protocol's
  promise that no event earlier than *t* is still coming; advances
  every entity's time horizon (PR 4's coalescing already minimised
  how many of these exist before they ever reach the transport).
* ``(OP_TICK, t)`` — a tariff period tick for the accounting unit.

Frames (``(kind, payload)`` tuples):

* ``(FRAME_OPS, (seq, batch))`` → worker; *batch* is the columnar op
  batch (an :class:`~repro.shard.codec.OpBatch` on the send side,
  decoded as a zero-copy :class:`~repro.shard.codec.PackedOps` on the
  receive side — one code string, one f64 time column, one i32 port
  column, one concatenated cell blob; the worker replays it without
  ever rebuilding op tuples via
  :meth:`~repro.shard.group.ShardGroup.apply_packed`).  The worker
  answers ``(FRAME_ACK, (seq, outputs))`` where *outputs* is the list
  of new ``(port, t, octets)`` output cells observed since the last
  ack — the piggy-backed reverse stream that makes one exchange per
  window suffice (the transaction-pipe pattern from SCE-MI).
* ``(FRAME_FINISH, t)`` → worker; drains/settles the group and
  answers ``(FRAME_RESULT, report)`` with counters, records, sync
  stats and any residual outputs.
* ``(FRAME_SNAPSHOT, None)`` → worker; answers
  ``(FRAME_RESULT, snapshot)`` without finishing.
* ``(FRAME_TELEMETRY, None)`` → worker; answers
  ``(FRAME_TELEMETRY, telemetry)`` with the shard's observability
  payload — metrics-registry snapshot, provenance spans, trace
  records and coverage counters (see
  :meth:`~repro.shard.group.ShardGroup.telemetry`).  Telemetry rides
  the same tag codec as every other control payload; nothing new is
  pickled.
* ``(FRAME_CLOSE, None)`` → worker exits its loop (no reply).
* ``(FRAME_ERROR, info)`` ← worker when replay raised; *info* carries
  ``type``/``message``/``traceback`` strings so the coordinator can
  re-raise with the full remote traceback (the PR 7 sweep-report
  policy applied to shards).

On the wire every frame is binary — struct-packed header, columnar op
payloads, a safe tag codec for control values; nothing is pickled in
either direction (see :mod:`repro.shard.codec`).  The tuple-based
:func:`pack_ops`/:func:`unpack_ops`/:func:`pack_outputs`/
:func:`unpack_outputs` helpers remain for tooling that works with
classic op-tuple lists, but no transport ships their output anymore.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["OP_CELL", "OP_NULL", "OP_TICK",
           "FRAME_OPS", "FRAME_ACK", "FRAME_FINISH", "FRAME_RESULT",
           "FRAME_SNAPSHOT", "FRAME_ERROR", "FRAME_CLOSE",
           "FRAME_HELLO", "FRAME_TELEMETRY", "ShardError",
           "error_info", "raise_remote",
           "pack_ops", "unpack_ops", "pack_outputs",
           "unpack_outputs"]

#: op codes (single chars keep frames compact on the wire)
OP_CELL = "c"
OP_NULL = "n"
OP_TICK = "k"

#: every cell payload on the wire is one whole ATM cell
CELL_OCTETS = 53

#: frame kinds
FRAME_OPS = "ops"
FRAME_ACK = "ack"
FRAME_FINISH = "finish"
FRAME_RESULT = "result"
FRAME_SNAPSHOT = "snapshot"
FRAME_ERROR = "error"
FRAME_CLOSE = "close"
#: first frame of a socket-coupled worker: ("hello", shard_id) — lets
#: the coordinator map accepted connections back to shards regardless
#: of connect order
FRAME_HELLO = "hello"
#: bidirectional telemetry exchange: the coordinator sends
#: ``(FRAME_TELEMETRY, None)`` and the worker answers
#: ``(FRAME_TELEMETRY, payload)`` with its observability snapshot
FRAME_TELEMETRY = "telemetry"

Op = Tuple[Any, ...]
Frame = Tuple[str, Any]


class ShardError(RuntimeError):
    """A shard worker failed; carries the remote traceback.

    ``shard`` names the shard, ``info`` is the raw
    ``{"type", "message", "traceback"}`` payload from the worker (or a
    synthesised one for transport-level deaths such as a crash
    mid-window).
    """

    def __init__(self, shard: str, info: Dict[str, str]) -> None:
        self.shard = shard
        self.info = dict(info)
        detail = info.get("traceback") or info.get("message") or "?"
        super().__init__(
            f"shard {shard!r} failed: {info.get('type', 'Error')}: "
            f"{info.get('message', '')}\n--- remote traceback ---\n"
            f"{detail}")


def error_info(exc: BaseException) -> Dict[str, str]:
    """Serialise an exception into the wire error payload
    (``type``/``message``/``traceback``), full traceback included."""
    import traceback as _tb
    return {"type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(_tb.format_exception(
                type(exc), exc, exc.__traceback__))}


def raise_remote(shard: str, frame_payload: Dict[str, str]) -> None:
    """Raise :class:`ShardError` for a worker ``FRAME_ERROR`` payload."""
    raise ShardError(shard, frame_payload)


def pack_ops(ops: List[Op]) -> Tuple[str, List[float], List[int],
                                     bytes]:
    """Flatten an op batch into four columns for the wire.

    Pickling thousands of small heterogeneous tuples costs more
    coordinator CPU than the shards spend replaying them — enough to
    serialise the whole topology on the coordinator.  Columns (one
    code string, one time list, one port list, one concatenated cell
    blob) pickle as four large objects instead, and
    :func:`unpack_ops` reproduces the *identical* op tuples on the
    worker, so replay semantics — and byte-identity — are untouched.
    """
    codes: List[str] = []
    times: List[float] = []
    ports: List[int] = []
    blobs: List[bytes] = []
    for op in ops:
        code = op[0]
        codes.append(code)
        times.append(op[1])
        if code == OP_CELL:
            octets = op[3]
            if len(octets) != CELL_OCTETS:
                raise ValueError(
                    f"cell op carries {len(octets)} octets, "
                    f"expected {CELL_OCTETS}")
            ports.append(op[2])
            blobs.append(octets)
        else:
            ports.append(-1)
    return "".join(codes), times, ports, b"".join(blobs)


def unpack_ops(packed: Tuple[str, List[float], List[int],
                             bytes]) -> List[Op]:
    """Rebuild the exact op batch :func:`pack_ops` flattened."""
    codes, times, ports, blob = packed
    ops: List[Op] = []
    offset = 0
    for index, code in enumerate(codes):
        if code == OP_CELL:
            octets = blob[offset:offset + CELL_OCTETS]
            offset += CELL_OCTETS
            ops.append((code, times[index], ports[index], octets))
        else:
            ops.append((code, times[index]))
    return ops


def pack_outputs(outputs: List[Tuple[int, float, bytes]]
                 ) -> Tuple[List[int], List[float], bytes]:
    """Flatten an output-cell list (same rationale as
    :func:`pack_ops`, applied to the piggy-backed ack stream)."""
    ports = [port for port, _, _ in outputs]
    times = [when for _, when, _ in outputs]
    blob = b"".join(octets for _, _, octets in outputs)
    return ports, times, blob


def unpack_outputs(packed: Tuple[List[int], List[float], bytes]
                   ) -> List[Tuple[int, float, bytes]]:
    """Rebuild the output-cell list :func:`pack_outputs` flattened."""
    ports, times, blob = packed
    return [(port, when,
             blob[i * CELL_OCTETS:(i + 1) * CELL_OCTETS])
            for i, (port, when) in enumerate(zip(ports, times))]


def split_ops(ops: List[Op], max_batch: int) -> List[List[Op]]:
    """Chunk an op list into batches of at most *max_batch* ops.

    Batching is purely a transport optimisation: the op order inside
    and across batches is preserved, so replay semantics are
    unchanged.
    """
    if max_batch <= 0 or len(ops) <= max_batch:
        return [ops] if ops else []
    return [ops[i:i + max_batch] for i in range(0, len(ops), max_batch)]
