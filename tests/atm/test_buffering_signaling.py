"""Tests for partial buffer sharing and the call-control FSM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import (AtmCell, CallControlProcess, CallRequest,
                       PbsQueueModule, Tariff)
from repro.netsim import Network, ProcessorModule, SinkModule


def make_pbs(capacity=8, threshold=4, service_time=None):
    net = Network()
    node = net.add_node("n")
    queue = PbsQueueModule("pbs", capacity=capacity,
                           clp1_threshold=threshold,
                           service_time=service_time)
    node.add_module(queue)
    return net, node, queue


def cell_packet(clp):
    return AtmCell.with_payload(1, 100, [0], clp=clp).to_packet()


class TestPbsQueue:
    def test_clp0_fills_whole_buffer(self):
        net, node, queue = make_pbs(capacity=4, threshold=2)
        for _ in range(6):
            queue.receive(cell_packet(0), 0)
        assert len(queue) == 4
        assert queue.dropped_clp0 == 2
        assert queue.dropped_clp1 == 0

    def test_clp1_limited_to_threshold(self):
        net, node, queue = make_pbs(capacity=4, threshold=2)
        for _ in range(6):
            queue.receive(cell_packet(1), 0)
        assert len(queue) == 2
        assert queue.dropped_clp1 == 4

    def test_clp0_uses_headroom_above_threshold(self):
        net, node, queue = make_pbs(capacity=4, threshold=2)
        queue.receive(cell_packet(1), 0)
        queue.receive(cell_packet(1), 0)
        queue.receive(cell_packet(1), 0)   # at threshold: dropped
        queue.receive(cell_packet(0), 0)   # CLP0 still admitted
        queue.receive(cell_packet(0), 0)
        assert len(queue) == 4
        assert queue.dropped_clp1 == 1
        assert queue.accepted_clp0 == 2

    def test_threshold_zero_blocks_all_clp1(self):
        net, node, queue = make_pbs(capacity=4, threshold=0)
        queue.receive(cell_packet(1), 0)
        assert queue.dropped_clp1 == 1
        assert len(queue) == 0

    def test_service_drains_in_order(self):
        net, node, queue = make_pbs(capacity=8, threshold=8,
                                    service_time=1.0)
        sink = SinkModule("sink", keep=True)
        node.add_module(sink)
        node.connect(queue, 0, sink, 0)
        for clp in (0, 1, 0):
            queue.receive(cell_packet(clp), 0)
        net.run()
        assert [p["CLP"] for p in sink.received] == [0, 1, 0]

    def test_pop_passive_mode(self):
        net, node, queue = make_pbs()
        assert queue.pop() is None
        queue.receive(cell_packet(0), 0)
        assert queue.pop()["CLP"] == 0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PbsQueueModule("q", capacity=0, clp1_threshold=0)
        with pytest.raises(ValueError):
            PbsQueueModule("q", capacity=4, clp1_threshold=5)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 20), st.data())
    def test_property_occupancy_never_exceeds_capacity(self, capacity,
                                                       data):
        threshold = data.draw(st.integers(0, capacity))
        clps = data.draw(st.lists(st.integers(0, 1), max_size=60))
        net, node, queue = make_pbs(capacity=capacity,
                                    threshold=threshold)
        for clp in clps:
            queue.receive(cell_packet(clp), 0)
            assert len(queue) <= capacity
        # conservation: every cell either queued or counted dropped
        assert (queue.accepted_clp0 + queue.accepted_clp1
                + queue.total_dropped) == len(clps)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 20), st.data())
    def test_property_clp1_never_above_threshold_occupancy(
            self, capacity, data):
        """A CLP1 cell is only ever admitted below the threshold."""
        threshold = data.draw(st.integers(0, capacity))
        clps = data.draw(st.lists(st.integers(0, 1), max_size=60))
        net, node, queue = make_pbs(capacity=capacity,
                                    threshold=threshold)
        for clp in clps:
            before = len(queue)
            accepted_before = queue.accepted_clp1
            queue.receive(cell_packet(clp), 0)
            if clp and queue.accepted_clp1 > accepted_before:
                assert before < threshold


def build_signaling_network(requests, wire_ack=True, **kwargs):
    """Host with a call-control agent, duplex control link to a
    switch."""
    from repro.atm import AtmSwitch
    net = Network()
    switch = AtmSwitch(net, "switch", num_ports=4)
    host = net.add_node("host")
    agent = CallControlProcess(requests, **kwargs)
    module = ProcessorModule("cc", agent)
    host.add_module(module)
    host.bind_port_output(0, module, 0)
    host.bind_port_input(0, module, 0)
    net.add_link(host, 0, switch.node, switch.control_port, delay=1e-5)
    if wire_ack:
        net.add_link(switch.node, switch.control_port, host, 0,
                     delay=1e-5)
    return net, switch, agent


class TestCallControl:
    def request(self, vci=100, hold=1e-3):
        return CallRequest(in_port=0, vpi=1, vci=vci, out_port=1,
                           out_vpi=1, out_vci=vci, hold_time=hold)

    def test_call_establishes_and_releases(self):
        net, switch, agent = build_signaling_network([self.request()])
        net.run(until=0.1)
        assert agent.calls_established == 1
        assert agent.calls_released == 1
        assert agent.state == "done"
        assert len(switch.table) == 0  # torn down again

    def test_connection_usable_while_held(self):
        net, switch, agent = build_signaling_network(
            [self.request(hold=1.0)])
        net.run(until=0.01)  # established, hold timer still running
        assert agent.state == "connected"
        assert switch.table.contains(0, 1, 100)

    def test_sequential_calls(self):
        requests = [self.request(vci=100), self.request(vci=200)]
        net, switch, agent = build_signaling_network(requests)
        net.run(until=0.1)
        assert agent.calls_established == 2
        assert agent.calls_released == 2

    def test_no_ack_leads_to_retries_then_failure(self):
        net, switch, agent = build_signaling_network(
            [self.request()], wire_ack=False,
            setup_timeout=1e-3, max_retries=2)
        net.run(until=0.1)
        assert agent.calls_failed == 1
        assert agent.calls_established == 0
        # original + 2 retries reached the GCU
        assert switch.gcu.control_messages == 3

    def test_tariff_registered_through_signalling(self):
        from repro.atm import AccountingUnit, AtmSwitch
        net = Network()
        accounting = AccountingUnit()
        switch = AtmSwitch(net, "switch", num_ports=2,
                           accounting=accounting)
        host = net.add_node("host")
        request = CallRequest(in_port=0, vpi=1, vci=100, out_port=1,
                              out_vpi=1, out_vci=100, hold_time=1.0,
                              tariff=Tariff(units_per_cell=2))
        module = ProcessorModule("cc", CallControlProcess([request]))
        host.add_module(module)
        host.bind_port_output(0, module, 0)
        host.bind_port_input(0, module, 0)
        net.add_duplex_link(host, 0, switch.node, switch.control_port)
        net.run(until=0.01)
        assert accounting.is_registered(1, 100)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CallControlProcess([], setup_timeout=0)
        with pytest.raises(ValueError):
            CallControlProcess([], max_retries=-1)
