"""Command-line interface: ``python -m repro``.

Small operational conveniences for exploring the reproduction:

* ``inventory`` — the package map (what substitutes what);
* ``examples`` — list runnable example scripts;
* ``example NAME`` — run one example;
* ``results`` — print the experiment tables of the last benchmark run.
"""

from __future__ import annotations

import argparse
import importlib
import runpy
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main"]

_SUBPACKAGES = [
    ("netsim", "OPNET-equivalent discrete-event network simulator"),
    ("traffic", "traffic model library (CBR/Poisson/on-off/MMPP/MPEG)"),
    ("atm", "ATM model suite (cells, switching, policing, accounting)"),
    ("hdl", "VSS-equivalent event-driven HDL simulation kernel"),
    ("rtl", "RTL device-under-test designs"),
    ("board", "RAVEN-equivalent hardware test board model"),
    ("core", "CASTANET: coupling, sync protocol, interfaces, compare"),
    ("analysis", "result collection and report rendering"),
]


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def _examples_dir() -> Path:
    return _repo_root() / "examples"


def _results_dir() -> Path:
    return _repo_root() / "benchmarks" / "results"


def _cmd_inventory(_args: argparse.Namespace) -> int:
    print("repro — CASTANET reproduction (DATE 1998)\n")
    for name, blurb in _SUBPACKAGES:
        module = importlib.import_module(f"repro.{name}")
        exported = len(getattr(module, "__all__", []))
        print(f"  repro.{name:<10} {blurb}  [{exported} exports]")
    return 0


def _list_examples() -> List[Path]:
    directory = _examples_dir()
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.py"))


def _cmd_examples(_args: argparse.Namespace) -> int:
    scripts = _list_examples()
    if not scripts:
        print("no examples directory found")
        return 1
    for script in scripts:
        doc = ""
        for line in script.read_text().splitlines():
            stripped = line.strip().strip('"').strip()
            if stripped and not stripped.startswith(("#", "!")):
                doc = stripped
                break
        print(f"  {script.stem:<28} {doc}")
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    target = _examples_dir() / f"{args.name}.py"
    if not target.is_file():
        known = ", ".join(p.stem for p in _list_examples())
        print(f"unknown example {args.name!r}; known: {known}",
              file=sys.stderr)
        return 2
    try:
        runpy.run_path(str(target), run_name="__main__")
    except SystemExit as exc:
        return int(exc.code or 0)
    return 0


def _cmd_results(_args: argparse.Namespace) -> int:
    directory = _results_dir()
    tables = sorted(directory.glob("*.txt")) if directory.is_dir() \
        else []
    if not tables:
        print("no benchmark results found — run:\n"
              "  pytest benchmarks/ --benchmark-only")
        return 1
    for table in tables:
        print(table.read_text().rstrip())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CASTANET reproduction utilities")
    commands = parser.add_subparsers(dest="command")
    commands.add_parser("inventory",
                        help="show the package map").set_defaults(
        fn=_cmd_inventory)
    commands.add_parser("examples",
                        help="list example scripts").set_defaults(
        fn=_cmd_examples)
    example = commands.add_parser("example", help="run one example")
    example.add_argument("name")
    example.set_defaults(fn=_cmd_example)
    commands.add_parser(
        "results",
        help="print the latest benchmark tables").set_defaults(
        fn=_cmd_results)
    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)
