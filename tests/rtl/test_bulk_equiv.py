"""Bulk-vs-generator trace equivalence (the tentpole correctness bar).

The bulk waveform playback of :class:`CellSender` must be
**trace-identical** to the behavioural generator path: identical cell
sequences driven through both must produce equivalent VCD waveforms
(``compare_waveforms`` — final value per signal per timestamp) and the
same received cells, on both the event-driven clock and the
:class:`CycleEngine`.
"""

import pytest

from repro.hdl import (CycleEngine, Simulator, VcdData, VcdWriter,
                       compare_waveforms)
from repro.rtl import CellReceiver, CellSender

PERIOD = 10
CLOCKINGS = ("event", "cycle")
PLAYBACKS = ("generator", "bulk")


def make_cell(seed):
    return [(seed * 7 + k) % 256 for k in range(53)]


def run_scenario(tmp_path, tag, clocking, playback, gap_octets=0,
                 cells=(), midrun_cells=(), until=4000):
    """Drive *cells* (and *midrun_cells* from half-time) through a
    sender/receiver pair, dumping the stream port to VCD."""
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    if clocking == "event":
        sim.add_clock(clk, period=PERIOD)
    else:
        CycleEngine(sim, clk, period=PERIOD)
    sender = CellSender(sim, "tx", clk, gap_octets=gap_octets,
                        playback=playback)
    received = []
    CellReceiver(sim, "rx", clk, sender.port,
                 on_cell=received.append)
    path = tmp_path / f"{tag}.vcd"
    with VcdWriter(sim, path, [clk] + sender.port.signals()):
        for cell in cells:
            sender.send(cell)
        sim.run(until=until // 2)
        for cell in midrun_cells:
            sender.send(cell)
        sim.run(until=until)
    assert sender.playback == playback
    return path, received


def assert_equivalent(tmp_path, clocking, **kwargs):
    runs = {}
    for playback in PLAYBACKS:
        runs[playback] = run_scenario(
            tmp_path, f"{clocking}_{playback}", clocking, playback,
            **kwargs)
    gen_path, gen_cells = runs["generator"]
    bulk_path, bulk_cells = runs["bulk"]
    assert bulk_cells == gen_cells
    diffs = compare_waveforms(VcdData.parse(gen_path),
                              VcdData.parse(bulk_path))
    assert diffs == [], f"bulk trace diverged: {diffs[:5]}"
    return runs


@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_back_to_back_cells_equivalent(tmp_path, clocking):
    cells = [make_cell(i) for i in range(3)]
    runs = assert_equivalent(tmp_path, clocking, cells=cells)
    assert len(runs["bulk"][1]) == 3


@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_gap_octets_equivalent(tmp_path, clocking):
    cells = [make_cell(i) for i in range(3)]
    runs = assert_equivalent(tmp_path, clocking, gap_octets=4,
                             cells=cells)
    assert len(runs["bulk"][1]) == 3


@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_idle_only_equivalent(tmp_path, clocking):
    runs = assert_equivalent(tmp_path, clocking, cells=())
    assert runs["bulk"][1] == []


@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_midrun_sends_equivalent(tmp_path, clocking):
    initial = [make_cell(i) for i in range(2)]
    later = [make_cell(i + 10) for i in range(2)]
    runs = assert_equivalent(tmp_path, clocking, cells=initial,
                             midrun_cells=later)
    assert len(runs["bulk"][1]) == 4


@pytest.mark.parametrize("clocking", CLOCKINGS)
def test_repeated_cell_uses_template_cache(tmp_path, clocking):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    if clocking == "event":
        sim.add_clock(clk, period=PERIOD)
    else:
        CycleEngine(sim, clk, period=PERIOD)
    sender = CellSender(sim, "tx", clk, playback="bulk")
    received = []
    CellReceiver(sim, "rx", clk, sender.port, on_cell=received.append)
    cell = make_cell(5)
    for _ in range(4):
        sender.send(cell)
    sim.run(until=4 * 53 * PERIOD + 200)
    assert received == [cell] * 4
    # first cell compiles with its initial phase gap, chained repeats
    # share one steady-state template
    assert sender.template_misses == 2
    assert sender.template_hits == 2
    assert sender.cells_sent == 4


def test_bulk_identical_across_clockings(tmp_path):
    """The two clocking schemes must agree on the bulk trace too."""
    cells = [make_cell(i) for i in range(3)]
    paths = {}
    for clocking in CLOCKINGS:
        paths[clocking], received = run_scenario(
            tmp_path, f"x_{clocking}", clocking, "bulk", cells=cells)
        assert len(received) == 3
    diffs = compare_waveforms(VcdData.parse(paths["event"]),
                              VcdData.parse(paths["cycle"]))
    assert diffs == [], f"clocking schemes diverged: {diffs[:5]}"
