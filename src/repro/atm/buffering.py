"""ATM buffer-acceptance strategies.

Output buffers of ATM switches discriminate by cell loss priority:
with *partial buffer sharing* (PBS) a queue of capacity K admits
CLP=1 (tagged/low-priority) cells only while the occupancy is below a
threshold T < K, reserving the headroom for CLP=0 traffic.  This is
the standard mechanism the CLP bit — and the tagging action of the
UPC policer — exists for, and a design parameter one explores at the
system level before committing it to hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..netsim.node import Module
from ..netsim.packet import Packet

__all__ = ["PbsQueueModule"]


class PbsQueueModule(Module):
    """A partial-buffer-sharing output queue.

    Args:
        name: module name.
        capacity: total buffer size K in cells.
        clp1_threshold: T — CLP=1 cells are dropped when the occupancy
            is at or above this value (must satisfy 0 <= T <= K).
        service_time: drain interval; one cell leaves on output
            stream 0 every ``service_time`` time units.

    Statistics: :attr:`dropped_clp0`, :attr:`dropped_clp1`,
    :attr:`max_occupancy`.
    """

    def __init__(self, name: str, capacity: int, clp1_threshold: int,
                 service_time: Optional[float] = None) -> None:
        super().__init__(name)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0 <= clp1_threshold <= capacity:
            raise ValueError(
                f"threshold {clp1_threshold} outside 0..{capacity}")
        self.capacity = capacity
        self.clp1_threshold = clp1_threshold
        self.service_time = service_time
        self._fifo: Deque[Packet] = deque()
        self._busy = False
        self.dropped_clp0 = 0
        self.dropped_clp1 = 0
        self.accepted_clp0 = 0
        self.accepted_clp1 = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def total_dropped(self) -> int:
        """All discarded cells regardless of priority."""
        return self.dropped_clp0 + self.dropped_clp1

    def receive(self, packet: Packet, stream: int) -> None:
        self.packets_in += 1
        clp = packet.get("CLP", 0)
        occupancy = len(self._fifo)
        if occupancy >= self.capacity:
            self._drop(clp)
            return
        if clp and occupancy >= self.clp1_threshold:
            self._drop(clp)
            return
        if clp:
            self.accepted_clp1 += 1
        else:
            self.accepted_clp0 += 1
        self._fifo.append(packet)
        self.max_occupancy = max(self.max_occupancy, len(self._fifo))
        if self.service_time is not None and not self._busy:
            self._busy = True
            self._kernel().schedule_after(self.service_time,
                                          self._complete)

    def pop(self) -> Optional[Packet]:
        """Explicitly remove the head cell (passive mode)."""
        if not self._fifo:
            return None
        return self._fifo.popleft()

    def _drop(self, clp: int) -> None:
        if clp:
            self.dropped_clp1 += 1
        else:
            self.dropped_clp0 += 1

    def _complete(self) -> None:
        if self._fifo:
            self.send(self._fifo.popleft(), stream=0)
        if self._fifo:
            self._kernel().schedule_after(self.service_time,
                                          self._complete)
        else:
            self._busy = False
