"""Tests for automatic interface-model generation (paper §4 outlook)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import AtmCell
from repro.core import (FieldSpec, InterfaceDescription, MappingError,
                        StructMapper, atm_cell_interface,
                        charging_record_interface)
from repro.hdl import Simulator


def simple_desc(word_bits=8, gap_words=0, **kwargs):
    struct = StructMapper([FieldSpec("A", 8), FieldSpec("B", 16),
                           FieldSpec("C", 8)])
    return InterfaceDescription(name="ifc", struct=struct,
                                word_bits=word_bits, gap_words=gap_words,
                                **kwargs)


def make_bench(desc):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    sender, receiver = desc.build(sim, clk)
    return sim, clk, sender, receiver


class TestDescription:
    def test_word_and_pdu_arithmetic(self):
        desc = simple_desc()  # 32 bits = 4 octets
        assert desc.octets_per_word == 1
        assert desc.words_per_pdu == 4

    def test_wider_words_shorten_transfer(self):
        desc = simple_desc(word_bits=16)
        assert desc.words_per_pdu == 2

    def test_pack_unpack_words_inverse(self):
        desc = simple_desc(word_bits=16)
        values = {"A": 0x12, "B": 0x3456, "C": 0x78}
        assert desc.unpack_words(desc.pack_words(values)) == values

    def test_wrong_word_count_rejected(self):
        desc = simple_desc()
        with pytest.raises(MappingError):
            desc.unpack_words([0, 1])

    def test_invalid_configs(self):
        struct = StructMapper([FieldSpec("A", 8)])
        with pytest.raises(MappingError):
            InterfaceDescription("x", struct, word_bits=12)
        with pytest.raises(MappingError):
            InterfaceDescription("x", struct, start_signal=None,
                                 valid_signal=None)
        with pytest.raises(MappingError):
            InterfaceDescription("x", struct, gap_words=-1)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_word_round_trip(self, data):
        widths = data.draw(st.lists(st.integers(1, 40), min_size=1,
                                    max_size=5))
        struct = StructMapper([FieldSpec(f"f{i}", w)
                               for i, w in enumerate(widths)])
        word_bits = data.draw(st.sampled_from([8, 16, 32]))
        desc = InterfaceDescription("p", struct, word_bits=word_bits)
        values = {f"f{i}": data.draw(st.integers(0, (1 << w) - 1))
                  for i, w in enumerate(widths)}
        assert desc.unpack_words(desc.pack_words(values)) == values


class TestGeneratedModels:
    def test_pdu_round_trip_through_signals(self):
        desc = simple_desc()
        sim, clk, sender, receiver = make_bench(desc)
        sender.send({"A": 1, "B": 0xBEEF, "C": 3})
        sim.run(until=10 * 20)
        assert receiver.pdus == [{"A": 1, "B": 0xBEEF, "C": 3}]
        assert sender.pdus_sent == 1
        assert receiver.framing_errors == 0

    def test_back_to_back_pdus(self):
        desc = simple_desc()
        sim, clk, sender, receiver = make_bench(desc)
        for value in range(5):
            sender.send({"A": value, "B": value * 10, "C": value})
        sim.run(until=10 * 60)
        assert [pdu["A"] for pdu in receiver.pdus] == [0, 1, 2, 3, 4]

    def test_gap_words_between_pdus(self):
        desc = simple_desc(gap_words=4)
        sim, clk, sender, receiver = make_bench(desc)
        sender.send({"A": 1, "B": 2, "C": 3})
        sender.send({"A": 4, "B": 5, "C": 6})
        sim.run(until=10 * 40)
        assert len(receiver.pdus) == 2

    def test_end_signal_pulses_on_last_word(self):
        desc = simple_desc(end_signal="eop")
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        sender, receiver = desc.build(sim, clk)
        pulses = []
        eop = sender.bundle.controls["eop"]
        sim.add_process(
            "watch",
            lambda s: pulses.append(s.now)
            if clk.rising() and eop.value == "1" else None,
            sensitivity=[clk])
        sender.send({"A": 1, "B": 2, "C": 3})
        sim.run(until=10 * 20)
        assert len(pulses) == 1

    def test_wide_word_interface(self):
        desc = simple_desc(word_bits=32)  # whole PDU in one word
        sim, clk, sender, receiver = make_bench(desc)
        sender.send({"A": 0xAA, "B": 0x1234, "C": 0x55})
        sim.run(until=10 * 10)
        assert receiver.pdus == [{"A": 0xAA, "B": 0x1234, "C": 0x55}]

    def test_backlog_counts_pending(self):
        desc = simple_desc()
        sim, clk, sender, receiver = make_bench(desc)
        sender.send({"A": 1, "B": 2, "C": 3})
        sender.send({"A": 4, "B": 5, "C": 6})
        assert sender.backlog == 2
        sim.run(until=10 * 60)
        assert sender.backlog == 0


class TestLibraryInstances:
    def test_atm_interface_is_53_words(self):
        desc = atm_cell_interface()
        assert desc.words_per_pdu == 53  # the paper's 53 clock cycles

    def test_atm_interface_stream_matches_cell_image(self):
        """The generated ATM interface emits the exact AtmCell octets."""
        desc = atm_cell_interface()
        cell = AtmCell.with_payload(7, 700, [1, 2, 3], pt=1, clp=1,
                                    gfc=2)
        octets = cell.to_octets()
        payload_int = 0
        for octet in cell.payload:
            payload_int = (payload_int << 8) | octet
        words = desc.pack_words({
            "GFC": cell.gfc, "VPI": cell.vpi, "VCI": cell.vci,
            "PT": cell.pt, "CLP": cell.clp,
            "HEC": cell.header_octets()[4], "PAYLOAD": payload_int})
        assert words == octets

    def test_generated_atm_interface_round_trip(self):
        desc = atm_cell_interface()
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        sender, receiver = desc.build(sim, clk)
        pdu = {"GFC": 0, "VPI": 1, "VCI": 100, "PT": 0, "CLP": 0,
               "HEC": 0x55, "PAYLOAD": 12345}
        sender.send(pdu)
        sim.run(until=10 * 60)
        assert receiver.pdus == [pdu]

    def test_charging_record_interface(self):
        desc = charging_record_interface()
        assert desc.words_per_pdu == 6
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        sender, receiver = desc.build(sim, clk)
        record = {"VPI": 1, "VCI": 100, "INTERVAL": 0,
                  "CELLS_CLP0": 7, "CELLS_CLP1": 2, "CHARGE": 16}
        sender.send(record)
        sim.run(until=10 * 10)
        assert receiver.pdus == [record]
