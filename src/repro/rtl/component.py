"""Component base class for RTL designs.

An RTL component owns hierarchically named signals and registers its
processes with the simulator — the Python equivalent of a VHDL
entity/architecture pair.  Synthesisable style is kept deliberately:
components expose port signals, all state changes happen in clocked
processes, and combinational outputs are driven with zero (delta)
delay.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..hdl.signal import Signal
from ..hdl.simulator import Simulator

__all__ = ["Component"]


class Component:
    """Base class: named signal factory + clocked-process helper."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    def signal(self, local_name: str, width: Optional[int] = None,
               init=None) -> Signal:
        """Create a signal named ``<component>.<local_name>``."""
        return self.sim.signal(f"{self.name}.{local_name}", width=width,
                               init=init)

    def clocked(self, clk: Signal, body: Callable[[], None],
                name: str = "seq") -> None:
        """Register *body* to run on every rising edge of *clk*.

        The body reads ``.value`` of its inputs and drives outputs —
        the shape of a ``process(clk)`` with ``rising_edge(clk)``.
        Registered with rising-edge sensitivity, so the falling edge
        does not dispatch the process at all; the guard stays as a
        belt-and-braces check for the initialisation run.
        """

        def proc(_sim: Simulator) -> None:
            if clk.rising():
                body()

        self.sim.add_process(f"{self.name}.{name}", proc,
                             sensitivity=[clk], edge="rise")

    def combinational(self, inputs: Sequence[Signal],
                      body: Callable[[], None],
                      name: str = "comb") -> None:
        """Register *body* to run on any event of *inputs* (and once at
        initialisation), like a combinational VHDL process."""
        self.sim.add_process(f"{self.name}.{name}",
                             lambda _sim: body(), sensitivity=list(inputs))
