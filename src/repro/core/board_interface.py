"""CASTANET ↔ hardware-test-board interface model (§3.3).

"The hardware that is hooked to the hardware test board is connected
to the OPNET simulation via a CASTANET interface model that is
configurable with respect to the clock gating factor and the duration
of one hardware test cycle."

:class:`BoardInterfaceModel` buffers cells produced at the network
level, converts them into per-clock pin vectors with the standard
cell-stream pin convention, runs bounded hardware test cycles and
converts captured responses back to the abstract level — so the *same*
network-level test bench drives the physical (here: pin-accurate
behavioural) device that drove the RTL co-simulation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..atm.cell import AtmCell
from ..board.board import HardwareTestBoard, TestCycleStats
from ..board.device import PinLevelDevice
from ..board.pinmap import (ConfigurationDataSet, PinSegment, PortMapping)

__all__ = ["BoardInterfaceModel", "cell_stream_pin_config",
           "IN_ATMDATA", "IN_CELLSYNC", "IN_VALID", "IN_TICK",
           "OUT_REC_VALID", "OUT_REC_WORD"]

# Logical port numbers of the standard cell-stream pin convention.
IN_ATMDATA = 1
IN_CELLSYNC = 2
IN_VALID = 3
IN_TICK = 4
OUT_REC_VALID = 1
OUT_REC_WORD = 2


def cell_stream_pin_config() -> ConfigurationDataSet:
    """The standard DUT hookup: octet-serial cell stream in, record
    words out.

    ======== ======================= =========================
    port     pins                    meaning
    ======== ======================= =========================
    inport 1 byte lane 0, bits 7..0  atmdata[7:0]
    inport 2 byte lane 1, bit 0      cellsync
    inport 3 byte lane 1, bit 1      valid
    inport 4 byte lane 1, bit 2      tariff_tick
    outport 1 byte lane 2, bit 0     rec_valid
    outport 2 byte lanes 3..6        rec_word[31:0]
    ======== ======================= =========================
    """
    config = ConfigurationDataSet()
    config.add_inport(PortMapping(IN_ATMDATA, 8, (PinSegment(0, 7, 8),)))
    config.add_inport(PortMapping(IN_CELLSYNC, 1, (PinSegment(1, 0, 1),)))
    config.add_inport(PortMapping(IN_VALID, 1, (PinSegment(1, 1, 1),)))
    config.add_inport(PortMapping(IN_TICK, 1, (PinSegment(1, 2, 1),)))
    config.add_outport(PortMapping(OUT_REC_VALID, 1,
                                   (PinSegment(2, 0, 1),)))
    config.add_outport(PortMapping(OUT_REC_WORD, 32,
                                   (PinSegment(3, 7, 8), PinSegment(4, 7, 8),
                                    PinSegment(5, 7, 8),
                                    PinSegment(6, 7, 8))))
    config.validate()
    return config


class BoardInterfaceModel:
    """Drives a board-hosted DUT from abstract cells.

    Args:
        board: the hardware test board (its configuration must be the
            :func:`cell_stream_pin_config` convention).
        device: the pin-level DUT mounted on the board.
        cycle_clocks: duration of one hardware test cycle in board
            clocks; stimuli accumulate until a cycle fills (or
            :meth:`flush` forces a partial cycle).
        clock_gating: emit one stimulus vector every *clock_gating*
            board clocks, idling the DUT in between (the configurable
            "clock gating factor").
    """

    def __init__(self, board: HardwareTestBoard, device: PinLevelDevice,
                 cycle_clocks: int = 4096, clock_gating: int = 1) -> None:
        if cycle_clocks < 1:
            raise ValueError("cycle_clocks must be >= 1")
        if not 1 <= cycle_clocks <= board.memory_depth:
            raise ValueError(
                f"cycle of {cycle_clocks} clocks exceeds board memory "
                f"depth {board.memory_depth}")
        if clock_gating < 1:
            raise ValueError("clock gating factor must be >= 1")
        self.board = board
        self.device = device
        self.cycle_clocks = cycle_clocks
        self.clock_gating = clock_gating
        self._pending_vectors: List[Dict[int, int]] = []
        self.record_words: List[int] = []
        self.cycle_stats: List[TestCycleStats] = []
        self.cells_sent = 0
        self.ticks_sent = 0

    # ------------------------------------------------------------------
    # Stimulus accumulation (abstract level)
    # ------------------------------------------------------------------
    def queue_cell(self, cell: AtmCell) -> None:
        """Append one cell's worth of per-clock stimulus vectors."""
        octets = cell.to_octets()
        for index, octet in enumerate(octets):
            self._append_vector({IN_ATMDATA: octet,
                                 IN_CELLSYNC: 1 if index == 0 else 0,
                                 IN_VALID: 1, IN_TICK: 0})
        self.cells_sent += 1
        self._maybe_run_cycles()

    def queue_tariff_tick(self) -> None:
        """Append a one-clock tariff tick (idle data)."""
        self._append_vector({IN_ATMDATA: 0, IN_CELLSYNC: 0,
                             IN_VALID: 0, IN_TICK: 1})
        self.ticks_sent += 1
        self._maybe_run_cycles()

    def queue_idle(self, clocks: int) -> None:
        """Append idle clocks (the inter-cell gaps of the stream)."""
        for _ in range(clocks):
            self._append_vector({IN_ATMDATA: 0, IN_CELLSYNC: 0,
                                 IN_VALID: 0, IN_TICK: 0})
        self._maybe_run_cycles()

    def _append_vector(self, vector: Dict[int, int]) -> None:
        self._pending_vectors.append(vector)
        for _ in range(self.clock_gating - 1):
            self._pending_vectors.append({IN_ATMDATA: 0, IN_CELLSYNC: 0,
                                          IN_VALID: 0, IN_TICK: 0})

    # ------------------------------------------------------------------
    # Test-cycle execution
    # ------------------------------------------------------------------
    def _maybe_run_cycles(self) -> None:
        while len(self._pending_vectors) >= self.cycle_clocks:
            chunk = self._pending_vectors[:self.cycle_clocks]
            self._pending_vectors = self._pending_vectors[
                self.cycle_clocks:]
            self._run_cycle(chunk)

    def flush(self, settle_clocks: int = 64) -> None:
        """Force out all buffered stimuli plus settle time for the DUT
        to finish draining its outputs."""
        self.queue_idle(settle_clocks)
        while self._pending_vectors:
            chunk = self._pending_vectors[:self.cycle_clocks]
            self._pending_vectors = self._pending_vectors[
                self.cycle_clocks:]
            self._run_cycle(chunk)

    def _run_cycle(self, vectors: List[Dict[int, int]]) -> None:
        result = self.board.run_test_cycle(self.device, vectors)
        self.cycle_stats.append(result.stats)
        for response in result.responses:
            if response.get(OUT_REC_VALID, 0) == 1:
                self.record_words.append(response[OUT_REC_WORD])

    def stats_snapshot(self) -> Dict[str, object]:
        """Machine-readable hardware-in-the-loop counters."""
        hw_time = sum(stats.hw_time for stats in self.cycle_stats)
        return {
            "cells_sent": self.cells_sent,
            "ticks_sent": self.ticks_sent,
            "test_cycles": len(self.cycle_stats),
            "record_words": len(self.record_words),
            "hw_time_s": hw_time,
            "total_wall_time_s": self.total_wall_time(),
            # Outport samples the device masked to zero on a metavalue
            # read; devices without the counter report zero.
            "metavalue_reads": getattr(self.device, "metavalue_reads",
                                       0),
            "board": self.board.stats_snapshot(),
        }

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def records(self, words_per_record: int = 6) -> List[Tuple[int, ...]]:
        """Group captured record words into fixed-size records."""
        whole = len(self.record_words) // words_per_record
        return [tuple(self.record_words[i * words_per_record:
                                        (i + 1) * words_per_record])
                for i in range(whole)]

    def total_wall_time(self) -> float:
        """Modelled wall-clock across all executed test cycles."""
        return sum(stats.total_time for stats in self.cycle_stats)

    def effective_clock_hz(self) -> float:
        """DUT clocks per wall-clock second over the whole run."""
        total = self.total_wall_time()
        clocks = sum(stats.clocks for stats in self.cycle_stats)
        return clocks / total if total > 0 else 0.0
