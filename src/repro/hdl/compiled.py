"""Compiled (levelized) RTL evaluation — the CCSS-style backend.

The event kernel charges every RTL process the full delta-cycle toll:
each output ``drive()`` normalises its value, schedules an update, and
the delta loop re-applies, re-resolves and re-dispatches it.  For
synthesisable components — clocked processes that read their inputs on
the rising edge and drive outputs for the next cycle — almost all of
that machinery is invariant and can be *compiled away*.

This module levelizes a component's process graph into straight-line
Python:

* every signal a compiled process touches is bound to a :class:`Slot`
  holding the *raw* value (``'0'``/``'1'``/… characters for scalars,
  plain ints for defined vectors, metavalue tuples otherwise) so reads
  cost one attribute load instead of a tuple walk;
* writes go through change-detecting writer closures into a dirty
  list — a no-change write costs one comparison, exactly mirroring the
  event kernel's no-event-on-no-change rule;
* one :class:`CompiledKernel` per ``(simulator, clock)`` runs all
  compiled sequential evaluations on the rising edge and then applies
  the dirty slots in a single *commit phase* that lands in the same
  delta cycle where event-backend ``drive()`` calls would apply — so a
  compiled component is trace-identical to its event twin;
* combinational evaluations are topologically sorted (Kahn) so a
  single ordered pass replaces delta iteration; registration order
  does not matter (an input may be written by a process registered
  later — the forward reference must resolve by initialisation); a
  cyclic graph raises :class:`CombinationalCycleError` naming the
  signals in the loop.

Backend selection is per component (``backend="event" | "compiled" |
"auto"``, see :class:`repro.rtl.Component`); ``"auto"`` falls back to
the event kernel when compilation raises :class:`UnsupportedFeature`
(for example a written signal that already carries a foreign driver)
and counts the fallback on ``Simulator.compiled_fallbacks``.

Known divergence (intra-delta only, invisible to waveforms): the
commit wakes observers into the *following* delta cycle and marks
``Signal.event`` only for signals that actually woke an observer, so a
process polling ``.event`` on an unobserved compiled output inside the
same time step may read ``False`` where the event backend reads
``True``.  Final per-tick values — the :func:`repro.hdl.
compare_waveforms` bar — are identical; the equivalence suite in
``tests/rtl/test_compiled_equiv.py`` enforces it per component.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from .logic import LogicError, vector_to_int
from .processes import CallbackProcess
from .signal import Signal
from .simulator import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["Slot", "CompileError", "CombinationalCycleError",
           "UnsupportedFeature", "CompileContext", "CompiledKernel",
           "compile_kernel", "slot_int", "raw_value"]


class CompileError(SimulationError):
    """Raised when a component cannot be compiled (strict backend) or
    to signal the ``auto`` backend to fall back to the event kernel."""


class CombinationalCycleError(CompileError):
    """Raised when the combinational dependency graph is cyclic; the
    message names the signals participating in the loop."""


class UnsupportedFeature(CompileError):
    """Raised for graphs the compiler does not cover (foreign drivers
    on a written signal, double writers, non-kernel combinational
    inputs, a non-scalar clock)."""


#: per-slot canonical-tuple -> int memo cap (mirrors Signal._norm_cache)
_INT_MEMO_LIMIT = 4096


class Slot:
    """The compiled backend's view of one signal.

    ``value`` holds the signal's current resolved value in raw form:
    the ``std_logic`` character for scalars, a plain int for fully
    defined vectors, the canonical metavalue tuple otherwise.  The
    kernel keeps it in sync with :attr:`Signal.value` in both
    directions (commit phase outward, :meth:`Signal._apply` inward for
    foreign drivers), so compiled reads never need a refresh phase.
    """

    __slots__ = ("signal", "value", "next_value", "dirty", "writer",
                 "_int_memo")

    def __init__(self, signal: Signal) -> None:
        self.signal = signal
        self.value: object = None
        self.next_value: object = None
        self.dirty = False
        #: label of the compiled process writing this slot (if any)
        self.writer: Optional[str] = None
        self._int_memo: Dict[tuple, int] = {}
        self._sync(signal._value)

    def _sync(self, canonical) -> None:
        """Refresh the raw value from a canonical signal value."""
        if type(canonical) is str:
            self.value = canonical
            return
        memo = self._int_memo
        raw = memo.get(canonical)
        if raw is None:
            try:
                raw = vector_to_int(canonical)
            except LogicError:
                self.value = canonical      # metavalue: keep the tuple
                return
            if len(memo) < _INT_MEMO_LIMIT:
                memo[canonical] = raw
        self.value = raw

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Slot({self.signal.name}={self.value!r})"


def slot_int(value) -> int:
    """Integer view of a slot value (defined vectors are already ints;
    metavalue tuples raise :class:`repro.hdl.LogicError` exactly like
    ``vector_to_int`` on the event path)."""
    if type(value) is int:
        return value
    return vector_to_int(value)


def raw_value(signal: Signal, value):
    """Normalise *value* for *signal* and convert it to the slot raw
    representation — for constants precomputed at compile time."""
    canonical = signal._normalize(value)
    if signal.width is None:
        return canonical
    try:
        return vector_to_int(canonical)
    except LogicError:
        return canonical


class CompileContext:
    """The builder-facing API of one process compilation.

    A component's compile hook receives a context and declares its
    signal accesses: :meth:`read` returns the input's :class:`Slot`,
    :meth:`write` returns a change-detecting writer closure for an
    output.  Declarations are staged — they are merged into the kernel
    only if the whole builder succeeds, so an ``auto`` fallback leaves
    the kernel untouched.
    """

    def __init__(self, kernel: "CompiledKernel", label: str) -> None:
        self.kernel = kernel
        self.label = label
        #: signals read by this process (for combinational levelizing)
        self.reads: List[Signal] = []
        #: signals written by this process (staged until merge)
        self.writes: List[Signal] = []

    def read(self, signal: Signal) -> Slot:
        """Declare *signal* as an input; returns its slot."""
        self.reads.append(signal)
        return self.kernel._slot(signal)

    def write(self, signal: Signal) -> Callable[[object], None]:
        """Declare *signal* as an output; returns the writer closure.

        Raises :class:`UnsupportedFeature` when the signal already has
        a foreign driver (a generator/test-bench process or another
        clock domain drives it — the compiler cannot prove exclusive
        ownership) or another compiled process already writes it.
        """
        slot = self.kernel._slot(signal)
        if slot.writer is not None:
            raise UnsupportedFeature(
                f"{self.label}: signal {signal.name!r} is already "
                f"written by compiled process {slot.writer!r}")
        for staged in self.writes:
            if staged is signal:
                raise UnsupportedFeature(
                    f"{self.label}: signal {signal.name!r} declared "
                    "written twice")
        if signal._drivers:
            raise UnsupportedFeature(
                f"{self.label}: signal {signal.name!r} already has "
                f"{len(signal._drivers)} driver(s) outside the "
                "compiled kernel")
        self.writes.append(signal)
        kernel = self.kernel
        dirty = kernel._dirty

        def write_fn(value, _slot=slot, _dirty=dirty):
            if _slot.dirty:
                _slot.next_value = value
            elif value != _slot.value:
                _slot.next_value = value
                _slot.dirty = True
                _dirty.append(_slot)

        return write_fn


class CompiledKernel:
    """All compiled evaluations of one ``(simulator, clock)`` pair.

    Execution per rising clock edge (delta cycle 1):

    1. every sequential evaluation runs in registration order, reading
       pre-edge slot values and staging writes into the dirty list;
    2. the *commit* process — scheduled as a zero-delay resume, so it
       executes in delta cycle 2, exactly where event-backend drives
       apply — installs the changed values on their signals, fires the
       signal hooks (VCD etc.) and wakes sensitive/waiting processes
       into delta cycle 3;
    3. if combinational evaluations are registered, the commit then
       runs them once in topological order, committing after each
       evaluation so downstream evaluations in the same pass read
       fresh values (the levelized equivalent of delta iteration).

    The kernel hangs off the clock signal itself
    (``clk._compiled_kernel``): both clocking schemes — the delta
    loop's changed-signal dispatch and the
    :class:`~repro.hdl.CycleEngine` fast edge path — invoke
    :meth:`_on_edge` after the clock's update applies, so an idle edge
    (no output changes) costs the evaluations and nothing else: no
    process dispatch, no commit, no delta round.  The clock must be
    driven by the event kernel (``sim.add_clock`` or a CycleEngine),
    not by another compiled kernel's commit.
    """

    def __init__(self, sim: "Simulator", clk: Signal) -> None:
        if clk.width is not None:
            raise UnsupportedFeature(
                f"clock {clk.name!r} is a vector; compiled kernels "
                "need a scalar clock")
        self.sim = sim
        self.clk = clk
        #: driver identity of every commit-phase signal update
        self._driver = object()
        self._slots: Dict[int, Slot] = {}
        self._dirty: List[Slot] = []
        self._seq_evals: List[Callable[[], None]] = []
        #: (label, eval, reads, writes) records of combinational
        #: processes; ``_comb_order`` holds the topologically sorted
        #: eval list rebuilt after each registration
        self._comb_entries: List[tuple] = []
        self._comb_order: List[Callable[[], None]] = []
        # statistics (aggregated by Simulator.stats_snapshot)
        self.components = 0
        self.evals_run = 0
        self.commit_writes = 0
        self._commit_proc = CallbackProcess(
            f"compiled[{clk.name}].commit", self._commit_cb)
        self._init_done = False
        if clk.sim is not sim:
            raise UnsupportedFeature(
                f"clock {clk.name!r} belongs to another simulator")
        clk._compiled_kernel = self
        if sim._initialized:
            # Simulator.initialize() already ran: nothing registered
            # yet, but mark the init phase done so late add_comb calls
            # evaluate immediately (like a late-added event process).
            self._init_done = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _slot(self, signal: Signal) -> Slot:
        if signal.sim is not self.sim:
            raise UnsupportedFeature(
                f"signal {signal.name!r} belongs to another simulator")
        slot = signal._compiled_slot
        if slot is None:
            slot = Slot(signal)
            signal._compiled_slot = slot
        return slot

    def add_seq(self, label: str,
                builder: Callable[[CompileContext],
                                  Callable[[], None]]) -> None:
        """Compile one sequential (clocked) process via *builder*."""
        ctx = CompileContext(self, label)
        evaluate = builder(ctx)
        if not callable(evaluate):
            raise CompileError(
                f"{label}: compile hook returned {evaluate!r}, "
                "expected an evaluation callable")
        for signal in ctx.writes:
            signal._compiled_slot.writer = label
        self._seq_evals.append(evaluate)

    def add_comb(self, label: str,
                 builder: Callable[[CompileContext],
                                   Callable[[], None]]) -> None:
        """Compile one combinational process via *builder*.

        Combinational inputs must be written inside this kernel (or be
        compile-time constants): only then is "evaluate once after the
        sequential commit, in topological order" equivalent to the
        event kernel's delta iteration.  A read of a signal another
        process is registered to write *later* is a forward reference
        and is allowed until initialisation — so registration order
        does not matter — but a read of a signal carrying a foreign
        driver raises :class:`UnsupportedFeature` immediately, as does
        an input still unwritten once the simulator initialises.  A
        read/write cycle among the combinational processes (including
        a process reading its own output) raises
        :class:`CombinationalCycleError`.
        """
        ctx = CompileContext(self, label)
        evaluate = builder(ctx)
        if not callable(evaluate):
            raise CompileError(
                f"{label}: compile hook returned {evaluate!r}, "
                "expected an evaluation callable")
        entry = (label, evaluate, tuple(ctx.reads), tuple(ctx.writes))
        order = self._levelize(self._comb_entries + [entry],
                               require_resolved=self._init_done)
        for signal in ctx.writes:
            signal._compiled_slot.writer = label
        self._comb_entries.append(entry)
        self._comb_order = order
        if self._init_done:
            # Registered after initialisation: run once immediately,
            # like a late-added event process's pending first run.
            evaluate()
            self.evals_run += 1
            if self._dirty:
                self._commit()

    def _levelize(self, entries: Sequence[tuple],
                  require_resolved: bool = True) -> List[Callable]:
        """Kahn-sort *entries* by signal dataflow; validate inputs.

        With ``require_resolved=False`` (registration time, before the
        simulator initialises) an input that nothing writes *yet* is
        tolerated as a forward reference; an input with a foreign
        driver is always rejected.
        """
        staged_writers: Dict[int, str] = {}
        for label, _evaluate, _reads, writes in entries:
            for signal in writes:
                staged_writers[id(signal)] = label
        for label, _evaluate, reads, _writes in entries:
            for signal in reads:
                slot = signal._compiled_slot
                written = (slot is not None and slot.writer is not None) \
                    or id(signal) in staged_writers
                if written or signal is self.clk:
                    continue
                if signal._drivers:
                    raise UnsupportedFeature(
                        f"{label}: combinational input {signal.name!r} "
                        f"has {len(signal._drivers)} driver(s) outside "
                        "the compiled kernel")
                if require_resolved:
                    raise UnsupportedFeature(
                        f"{label}: combinational input {signal.name!r} "
                        "is not written inside the compiled kernel")
        # edges: producer entry -> consumer entry; a self-edge (a
        # process reading its own output) is a combinational cycle
        producer_of: Dict[int, int] = {}
        for index, (_l, _e, _r, writes) in enumerate(entries):
            for signal in writes:
                producer_of[id(signal)] = index
        indegree = [0] * len(entries)
        consumers: List[List[int]] = [[] for _ in entries]
        for index, (_l, _e, reads, _w) in enumerate(entries):
            for signal in reads:
                producer = producer_of.get(id(signal))
                if producer is not None:
                    consumers[producer].append(index)
                    indegree[index] += 1
        # Kahn with a sorted ready set: topological order, ties broken
        # by registration index (deterministic levelizing).
        ready = sorted(i for i, degree in enumerate(indegree)
                       if degree == 0)
        order: List[int] = []
        while ready:
            index = ready.pop(0)
            order.append(index)
            for consumer in consumers[index]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    insort(ready, consumer)
        if len(order) != len(entries):
            remaining = [i for i in range(len(entries))
                         if indegree[i] > 0]
            names = sorted({
                signal.name
                for i in remaining
                for signal in entries[i][3]
                if any(signal in entries[j][2] for j in remaining)})
            raise CombinationalCycleError(
                "combinational cycle through signal(s): "
                + ", ".join(names))
        return [entries[i][1] for i in order]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        """Initialisation run (idempotent): resolve forward references
        and evaluate combinational logic once, like the event kernel's
        initial run of every process.  Called by
        :meth:`Simulator.initialize`."""
        if self._init_done:
            return
        self._init_done = True
        if self._comb_entries:
            # Forward references tolerated at registration time must
            # have found their writer by now.
            self._comb_order = self._levelize(self._comb_entries,
                                              require_resolved=True)
            self._run_comb()

    def _on_edge(self) -> None:
        """One rising clock edge: run the sequential evaluations and,
        when any staged output changed, schedule the commit phase.

        Called by the edge-dispatch paths (delta loop and CycleEngine
        fast path) right after the clock's update has applied — the
        callers guarantee a rising edge.  Deliberately not a process:
        an idle edge costs the evaluations and nothing else."""
        evals = self._seq_evals
        for evaluate in evals:
            evaluate()
        self.evals_run += len(evals)
        if self._dirty:
            self.sim._pending_resumes.append(self._commit_proc)

    def _commit_cb(self, _sim: "Simulator") -> None:
        self._commit()
        self._run_comb()

    def _run_comb(self) -> None:
        """One levelized combinational pass: evaluate in topological
        order, committing after each evaluation so downstream
        evaluations read the fresh values."""
        order = self._comb_order
        if not order:
            return
        for evaluate in order:
            evaluate()
            if self._dirty:
                self._commit()
        self.evals_run += len(order)

    def _commit(self) -> None:
        """Apply the dirty slots to their signals (one delta cycle's
        worth of updates), firing hooks and waking observers."""
        dirty = self._dirty
        if not dirty:
            return
        pending = dirty[:]
        del dirty[:]
        sim = self.sim
        driver = self._driver
        now = sim.now
        hooks = sim.signal_hooks
        resumes = sim._pending_resumes
        # Observers woken here run in the NEXT delta cycle (they are
        # zero-delay resumes); .event must read True there.
        event_stamp = sim._delta_stamp + 1
        seen: set = set()
        self.commit_writes += len(pending)
        for slot in pending:
            slot.dirty = False
            value = slot.next_value
            if value == slot.value:
                continue                    # reverted within one eval
            signal = slot.signal
            if signal.width is None:
                canonical = value if type(value) is str \
                    else signal._normalize(value)
            else:
                canonical = signal._normalize(value)
            drivers = signal._drivers
            drivers[driver] = canonical
            if len(drivers) > 1:
                # Foreign drivers appeared after compile: fall back to
                # full IEEE-1164 resolution for this signal.
                resolved = signal._resolve()
                if resolved == signal._value:
                    slot._sync(resolved)
                    continue
                canonical = resolved
                slot._sync(resolved)
            else:
                slot.value = value if type(canonical) is not str \
                    else canonical
            signal._previous = signal._value
            signal._value = canonical
            signal.change_count += 1
            signal.last_event_time = now
            woken = sim._wake_observers(signal, resumes, seen)
            if woken:
                signal._event_delta = event_stamp
            if hooks:
                for hook in hooks:
                    hook(signal)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, int]:
        """Kernel counters (levelized evals, commit-phase writes)."""
        return {
            "components": self.components,
            "seq_evals": len(self._seq_evals),
            "comb_evals": len(self._comb_entries),
            "evals_run": self.evals_run,
            "commit_writes": self.commit_writes,
        }


def compile_kernel(sim: "Simulator", clk: Signal) -> CompiledKernel:
    """The :class:`CompiledKernel` of ``(sim, clk)``, created on first
    use and cached on ``sim._compiled_kernels``."""
    kernels = sim._compiled_kernels
    kernel = kernels.get(id(clk))
    if kernel is None:
        kernel = CompiledKernel(sim, clk)
        kernels[id(clk)] = kernel
    return kernel
