"""Event-driven HDL simulation kernel with delta cycles.

The Synopsys-VSS-equivalent substrate.  Semantics follow the VHDL
simulation cycle:

1. signal updates scheduled for the current time are applied;
2. signals whose resolved value changed produce *events*;
3. processes sensitive to (or waiting on) those events run, scheduling
   new updates — zero-delay updates take effect in the *next delta
   cycle* at the same simulated time;
4. when no delta work remains, time advances to the next scheduled
   update.

Time is integral (ticks); :attr:`Simulator.time_unit` gives the tick
length in seconds (default 1 ns) and is what the CASTANET abstraction
interface uses to convert between network-simulator seconds and HDL
clock cycles.

The kernel counts events, delta cycles and process runs — the raw
material for the paper's observation that "the number of events that
event-driven simulators have to evaluate is an order of magnitude
higher compared to the system-level simulation" (experiment E3).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Generator, List, Optional, Sequence, \
    Tuple, Union

from .logic import LogicError
from .processes import (CallbackProcess, FallingEdge, GeneratorProcess,
                        Process, ProcessError, RisingEdge)
from .signal import Signal

__all__ = ["Simulator", "SimulationError", "CombinationalLoopError"]


class SimulationError(Exception):
    """Raised on kernel-level errors (time reversal, bad scheduling)."""


class CombinationalLoopError(SimulationError):
    """Raised when delta cycles at one time step exceed the bound —
    the classic symptom of a zero-delay feedback loop."""


class Simulator:
    """An event-driven simulator instance.

    Example:
        >>> sim = Simulator()
        >>> clk = sim.signal("clk", init="0")
        >>> sim.add_clock(clk, period=10)
        >>> sim.run(until=25)
        >>> clk.value
        '1'
    """

    def __init__(self, time_unit: float = 1e-9,
                 max_delta_cycles: int = 1000) -> None:
        self.time_unit = time_unit
        self.max_delta_cycles = max_delta_cycles
        self.now: int = 0
        self.signals: List[Signal] = []
        self.processes: List[Process] = []
        #: hooks called with each signal after a value change (VCD etc.)
        self.signal_hooks: List[Callable[[Signal], None]] = []

        self._heap: List[Tuple[int, int, tuple]] = []
        self._seq = itertools.count()
        self._pending_updates: List[tuple] = []
        self._pending_resumes: List[GeneratorProcess] = []
        self._waiters: Dict[int, List[GeneratorProcess]] = {}
        self._current_process: Optional[Process] = None
        self._anonymous_driver = object()
        self._delta_stamp = 0
        self._initialized = False

        # statistics
        self.events_executed = 0     # applied signal updates
        self.signal_events = 0       # updates that changed a value
        self.delta_cycles = 0
        self.process_runs = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def signal(self, name: str, width: Optional[int] = None,
               init=None) -> Signal:
        """Create a signal owned by this simulator."""
        return Signal(self, name, width=width, init=init)

    def add_process(self, name: str, fn: Callable[["Simulator"], None],
                    sensitivity: Sequence[Signal] = ()) -> CallbackProcess:
        """Register an RTL-style callback process."""
        process = CallbackProcess(name, fn, sensitivity)
        self.processes.append(process)
        if self._initialized:
            self._pending_resume_callback(process)
        return process

    def add_generator(self, name: str,
                      generator: Generator) -> GeneratorProcess:
        """Register a behavioural generator process."""
        process = GeneratorProcess(name, generator)
        self.processes.append(process)
        if self._initialized:
            self._run_process(process)
        return process

    def add_clock(self, signal: Signal, period: int,
                  start_high: bool = False,
                  duty_ticks: Optional[int] = None) -> GeneratorProcess:
        """Drive *signal* as a free-running clock of *period* ticks."""
        if period < 2:
            raise SimulationError(f"clock period must be >= 2 ticks")
        high = duty_ticks if duty_ticks is not None else period // 2
        if not 0 < high < period:
            raise SimulationError(
                f"clock duty {high} outside (0, {period})")

        def clock_gen():
            first, second = ("1", "0") if start_high else ("0", "1")
            first_span = high if start_high else period - high
            second_span = period - first_span
            signal.drive(first)
            while True:
                yield first_span
                signal.drive(second)
                yield second_span
                signal.drive(first)

        return self.add_generator(f"clock:{signal.name}", clock_gen())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Run the initialisation phase (idempotent): every process
        executes once, then time-zero deltas settle."""
        if self._initialized:
            return
        self._initialized = True
        for process in list(self.processes):
            self._run_process(process)
        self._execute_deltas()

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains or *until* ticks.

        The clock is advanced to exactly *until* on return when given.
        Returns the current time.
        """
        self.initialize()
        self._execute_deltas()
        while self._heap:
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                break
            if next_time < self.now:
                raise SimulationError(
                    f"time reversal: event at {next_time} < {self.now}")
            self.now = next_time
            while self._heap and self._heap[0][0] == next_time:
                _t, _s, item = heapq.heappop(self._heap)
                if item[0] == "update":
                    self._pending_updates.append(item[1:])
                else:
                    self._pending_resumes.append(item[1])
            self._execute_deltas()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_for(self, ticks: int) -> int:
        """Run *ticks* further from the current time."""
        return self.run(until=self.now + ticks)

    @property
    def pending_event_count(self) -> int:
        """Scheduled-but-unapplied updates/resumes (incl. future)."""
        return (len(self._heap) + len(self._pending_updates)
                + len(self._pending_resumes))

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest scheduled future event, or ``None``."""
        if self._pending_updates or self._pending_resumes:
            return self.now
        if not self._heap:
            return None
        return self._heap[0][0]

    # ------------------------------------------------------------------
    # Kernel internals (used by Signal and processes)
    # ------------------------------------------------------------------
    def _register_signal(self, signal: Signal) -> None:
        self.signals.append(signal)

    def _current_driver(self) -> object:
        return (self._current_process if self._current_process is not None
                else self._anonymous_driver)

    def _schedule_update(self, signal: Signal, driver: object,
                         value, delay: int) -> None:
        if not isinstance(delay, int) or delay < 0:
            raise SimulationError(
                f"drive delay must be a non-negative int, got {delay!r}")
        if delay == 0:
            self._pending_updates.append((signal, driver, value))
        else:
            heapq.heappush(self._heap, (self.now + delay, next(self._seq),
                                        ("update", signal, driver, value)))

    def _cancel_pending_updates(self, signal: Signal,
                                driver: object) -> None:
        """Drop this driver's not-yet-applied updates on *signal*
        (inertial-delay preemption).  Future (heap) updates are
        rewritten in place; current-delta updates are filtered."""
        self._pending_updates = [
            item for item in self._pending_updates
            if not (item[0] is signal and item[1] is driver)]
        kept = []
        dropped = False
        for time, seq, item in self._heap:
            if (item[0] == "update" and item[1] is signal
                    and item[2] is driver):
                dropped = True
                continue
            kept.append((time, seq, item))
        if dropped:
            self._heap = kept
            heapq.heapify(self._heap)

    def _schedule_resume(self, process: GeneratorProcess,
                         delay: int) -> None:
        if delay == 0:
            self._pending_resumes.append(process)
        else:
            heapq.heappush(self._heap, (self.now + delay, next(self._seq),
                                        ("resume", process)))

    def _add_waiter(self, signal: Signal,
                    process: GeneratorProcess) -> None:
        self._waiters.setdefault(id(signal), []).append(process)

    def _remove_waiter(self, signal: Signal,
                       process: GeneratorProcess) -> None:
        bucket = self._waiters.get(id(signal), [])
        if process in bucket:
            bucket.remove(process)

    def _pending_resume_callback(self, process: CallbackProcess) -> None:
        # Late-added callback processes execute in the next delta.
        self._pending_resumes.append(process)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # The delta loop
    # ------------------------------------------------------------------
    def _execute_deltas(self) -> None:
        rounds = 0
        while self._pending_updates or self._pending_resumes:
            rounds += 1
            if rounds > self.max_delta_cycles:
                raise CombinationalLoopError(
                    f"more than {self.max_delta_cycles} delta cycles at "
                    f"t={self.now}: zero-delay feedback loop?")
            self._delta_stamp += 1
            self.delta_cycles += 1
            updates = self._pending_updates
            resumes = self._pending_resumes
            self._pending_updates = []
            self._pending_resumes = []

            changed: List[Signal] = []
            for signal, driver, value in updates:
                self.events_executed += 1
                if signal._apply(driver, value):
                    signal._event_delta = self._delta_stamp
                    signal.last_event_time = self.now
                    self.signal_events += 1
                    changed.append(signal)

            runnable: List[Process] = []
            seen = set()
            for signal in changed:
                for process in signal._sensitive:
                    if id(process) not in seen and not process.finished:
                        seen.add(id(process))
                        runnable.append(process)
                bucket = self._waiters.get(id(signal), [])
                for process in list(bucket):
                    if (id(process) not in seen
                            and process._satisfied_by(signal)):
                        seen.add(id(process))
                        process._disarm(self)
                        runnable.append(process)
            for process in resumes:
                if id(process) not in seen and not process.finished:
                    seen.add(id(process))
                    runnable.append(process)

            for process in runnable:
                self._run_process(process)

            for signal in changed:
                for hook in self.signal_hooks:
                    hook(signal)
        # Leave the stamp pointing past the last delta so that
        # Signal.event reads False once delta processing has settled.
        self._delta_stamp += 1

    def _run_process(self, process: Process) -> None:
        self._current_process = process
        try:
            process._run(self)
            self.process_runs += 1
        finally:
            self._current_process = None
