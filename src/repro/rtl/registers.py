"""Basic sequential building blocks: registers and counters."""

from __future__ import annotations

from typing import Optional

from ..hdl.compiled import raw_value
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .component import Component

__all__ = ["Register", "Counter"]


class Register(Component):
    """A clocked register with optional enable and synchronous reset.

    Ports:
        d (in), q (out) — data of ``width`` bits (scalar when ``None``).
        enable (in, optional) — q follows d only while '1'.
        reset (in, optional) — synchronous, loads ``reset_value``.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal, d: Signal,
                 enable: Optional[Signal] = None,
                 reset: Optional[Signal] = None,
                 reset_value=0, backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        self.d = d
        self.q = self.signal("q", width=d.width)
        self.enable = enable
        self.reset = reset
        self._reset_value = reset_value
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    def _tick(self) -> None:
        if self.reset is not None and self.reset.value == "1":
            self.q.drive(self._reset_value)
            return
        if self.enable is not None and self.enable.value != "1":
            return
        self.q.drive(self.d.value)

    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick`; the reset value is
        pre-normalised to slot raw form at compile time."""
        d = ctx.read(self.d)
        w_q = ctx.write(self.q)
        reset = (ctx.read(self.reset)
                 if self.reset is not None else None)
        enable = (ctx.read(self.enable)
                  if self.enable is not None else None)
        reset_raw = raw_value(self.q, self._reset_value)

        def evaluate():
            if reset is not None and reset.value == "1":
                w_q(reset_raw)
                return
            if enable is not None and enable.value != "1":
                return
            w_q(d.value)

        return evaluate


class Counter(Component):
    """A synchronous up-counter with enable and synchronous reset.

    Wraps at ``2**width``.  The count is visible on ``q``.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal, width: int,
                 enable: Optional[Signal] = None,
                 reset: Optional[Signal] = None,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        if width < 1:
            raise ValueError(f"counter width must be >= 1, got {width}")
        self.width = width
        self.q = self.signal("q", width=width, init=0)
        self.enable = enable
        self.reset = reset
        self._count = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    def _tick(self) -> None:
        if self.reset is not None and self.reset.value == "1":
            self._count = 0
        elif self.enable is None or self.enable.value == "1":
            self._count = (self._count + 1) % (1 << self.width)
        else:
            return
        self.q.drive(self._count)

    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick`."""
        w_q = ctx.write(self.q)
        reset = (ctx.read(self.reset)
                 if self.reset is not None else None)
        enable = (ctx.read(self.enable)
                  if self.enable is not None else None)
        modulus = 1 << self.width

        def evaluate():
            if reset is not None and reset.value == "1":
                self._count = 0
            elif enable is None or enable.value == "1":
                self._count = (self._count + 1) % modulus
            else:
                return
            w_q(self._count)

        return evaluate
