"""The persistent scenario job service behind ``python -m repro serve``.

:class:`JobService` turns the one-shot sweep runner into a long-lived
server: a request queue, a worker-process pool that *persists across
jobs* (so the compiled cell-template cache — see
:func:`repro.rtl.cell_stream.enable_shared_templates` — amortises
compilation over every job a worker ever runs), a result store, and a
JSON-lines TCP front door.

Jobs are sweep run payloads (:meth:`repro.sweep.RunSpec.as_dict`
dicts) executed by :func:`repro.sweep.scenario.execute_run` — the same
scenario, validation and failure-injection hooks the sweep runner
uses.  The failure policy mirrors :class:`repro.sweep.SweepRunner`:

* **error** (scenario exception) — recorded immediately with the full
  worker traceback; deterministic, never retried;
* **crash** (worker death) — the worker is respawned and the job
  retried once, then recorded as ``status: "crash"`` with the exit
  code;
* **timeout** — the worker is killed and respawned, the job retried
  once, then recorded as ``status: "timeout"``.

Wire protocol (one JSON object per line, both directions)::

    {"op": "submit", "run": {...}}          -> {"ok": true, "job_id": "job-1"}
    {"op": "result", "job_id": "job-1",
     "wait": true, "timeout": 30}           -> {"ok": true, "job": {...}}
    {"op": "status"}                        -> {"ok": true, "status": {...}}
    {"op": "stats"}                         -> {"ok": true, "stats": {...}}
    {"op": "shutdown"}                      -> {"ok": true}

The ``stats`` op is the live-introspection STATS handshake (PR 10):
queue depth, the per-worker job/crash/timeout/retry counters (counters
belong to the pool *slot*, so they survive a worker respawn), and the
merged telemetry of the jobs the service has completed — latency
histograms bucket-merged across jobs
(:func:`repro.obs.merge.merge_histograms`), synchroniser and
provenance totals summed — plus the ids of the jobs running right
now.  ``python -m repro stats --service HOST:PORT`` and ``python -m
repro serve --status HOST:PORT`` render it.

:class:`ServeClient` wraps that protocol for Python callers (and the
tests' serve smoke).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, List, Optional, Tuple

from ..obs.merge import merge_histograms
from ..sweep.scenario import execute_run
from ..sweep.spec import RunSpec, SweepSpecError
from .topology import _mp_context

__all__ = ["JobService", "ServeClient"]

#: attempts per job before a crash/timeout becomes terminal
MAX_ATTEMPTS = 2


def _service_worker_main(conn) -> None:
    """Worker-process entry: serve jobs until told to stop.

    The process persists across jobs, which is the whole point: the
    shared compiled cell-template cache enabled here carries each
    job's template compilations into every later job this worker runs
    (``templates`` in each result reports the accumulated reuse).
    """
    import traceback as _tb

    from ..rtl.cell_stream import (enable_shared_templates,
                                   shared_template_stats)
    enable_shared_templates()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, job_id, run, attempt = message
        try:
            result = execute_run(run, attempt=attempt, in_worker=True)
            result["templates"] = shared_template_stats()
            conn.send(("ok", job_id, result))
        except Exception as exc:
            conn.send(("error", job_id,
                       {"type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": _tb.format_exc()}))


class _Worker:
    """Bookkeeping for one persistent pool worker.

    The *slot* outlives any single worker process: :meth:`JobService.
    _replace` swaps a fresh process into the same slot, so ``name``
    and the per-slot ``counters`` (jobs settled, errors, crashes,
    timeouts, retries) accumulate across respawns — which is what the
    STATS introspection wants to show.
    """

    __slots__ = ("process", "conn", "job_id", "attempt", "deadline",
                 "name", "counters")

    def __init__(self, process, conn, name: str) -> None:
        self.process = process
        self.conn = conn
        self.name = name
        self.job_id: Optional[str] = None
        self.attempt = 0
        self.deadline = 0.0
        self.counters = {"jobs": 0, "ok": 0, "errors": 0,
                         "crashes": 0, "timeouts": 0, "retries": 0}

    @property
    def busy(self) -> bool:
        return self.job_id is not None


class JobService:
    """Persistent job service: queue, worker pool, result store.

    Args:
        jobs: pool size — for sharded workloads, size this to the
            shard count so every shard's scenarios stream through a
            dedicated long-lived worker.
        timeout_s: per-job wall-clock budget before the worker is
            killed and respawned.
        host, port: TCP bind address for :meth:`serve_forever`
            (``port=0`` picks an ephemeral port, published via
            :attr:`address` once :meth:`start` ran).

    Programmatic surface: :meth:`submit` / :meth:`result` /
    :meth:`status` / :meth:`shutdown`; the socket server simply maps
    the wire ops onto these.
    """

    def __init__(self, jobs: int = 2, timeout_s: float = 120.0,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        if jobs < 1:
            raise ValueError(f"need >= 1 worker, got {jobs}")
        if timeout_s <= 0:
            raise ValueError(f"non-positive timeout {timeout_s}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._ctx = _mp_context()
        self._workers: List[_Worker] = []
        self._queue: List[Tuple[str, int]] = []
        self._store: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._torn_down = False
        self._dispatcher: Optional[threading.Thread] = None
        self._listener: Optional[socket.socket] = None
        self._seq = 0
        self.stats = {"submitted": 0, "completed": 0, "errors": 0,
                      "crashes": 0, "timeouts": 0, "retries": 0,
                      "workers_spawned": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JobService":
        """Spawn the worker pool and the dispatcher thread; binds the
        TCP listener (``address`` becomes the dial target)."""
        if self._dispatcher is not None:
            return self
        for index in range(self.jobs):
            self._workers.append(self._spawn(f"worker{index}"))
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self._listener.listen()
        self._listener.settimeout(0.25)
        self.address = self._listener.getsockname()[:2]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        return self

    def _spawn(self, name: str) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_service_worker_main, args=(child_conn,),
            name=f"serve-worker-{self.stats['workers_spawned']}",
            daemon=True)
        process.start()
        child_conn.close()
        self.stats["workers_spawned"] += 1
        return _Worker(process, parent_conn, name)

    def shutdown(self) -> None:
        """Stop dispatching, cancel queued jobs, reap the pool
        (idempotent).

        Guarded by its own flag, not ``_stop``: a wire-level shutdown
        request trips ``_stop`` first (to break the accept loop) and
        the actual teardown still has to run exactly once after it.
        """
        if self._torn_down:
            return
        self._torn_down = True
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
        with self._lock:
            for job_id, _ in self._queue:
                record = self._store.get(job_id)
                if record is not None and record["status"] == "queued":
                    record["status"] = "cancelled"
            self._queue.clear()
            self._done.notify_all()
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            worker.conn.close()
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join()
        self._workers = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def __enter__(self) -> "JobService":
        """Start the service on scope entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Shut the service down on scope exit, exception or not."""
        self.shutdown()

    # ------------------------------------------------------------------
    # Programmatic API
    # ------------------------------------------------------------------
    def submit(self, run: Dict[str, Any]) -> str:
        """Enqueue one job (a :meth:`~repro.sweep.RunSpec.as_dict`
        payload, validated before queueing); returns the job id."""
        spec = RunSpec.from_dict(dict(run))  # raises on bad payloads
        with self._lock:
            if self._stop.is_set():
                raise RuntimeError("service is shut down")
            self._seq += 1
            job_id = f"job-{self._seq}"
            self._store[job_id] = {"job_id": job_id,
                                   "name": spec.name,
                                   "status": "queued",
                                   "run": spec.as_dict(),
                                   "attempts": 0,
                                   "result": None}
            self._queue.append((job_id, 1))
            self.stats["submitted"] += 1
        return job_id

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """The job record; with *wait*, block until it leaves the
        queue/running states (or *timeout* seconds elapse)."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._lock:
            record = self._store.get(job_id)
            if record is None:
                raise KeyError(f"unknown job id {job_id!r}")
            while wait and record["status"] in ("queued", "running"):
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._done.wait(timeout=0.25 if remaining is None
                                else min(0.25, remaining))
            return dict(record)

    def status(self) -> Dict[str, Any]:
        """Service-level counters plus the per-state job census."""
        with self._lock:
            census: Dict[str, int] = {}
            for record in self._store.values():
                census[record["status"]] = \
                    census.get(record["status"], 0) + 1
            return {"jobs": self.jobs,
                    "timeout_s": self.timeout_s,
                    "queue_depth": len(self._queue),
                    "census": census,
                    "stats": dict(self.stats)}

    def stats_snapshot(self) -> Dict[str, Any]:
        """The live-introspection STATS payload: queue depth, the
        per-worker counters, running job ids, and the merged
        telemetry of every completed job."""
        with self._lock:
            workers = []
            for worker in self._workers:
                workers.append({
                    "name": worker.name,
                    "alive": worker.process.is_alive(),
                    "busy": worker.busy,
                    "job": worker.job_id,
                    "attempt": worker.attempt,
                    "counters": dict(worker.counters),
                })
            running = sorted(
                record["job_id"]
                for record in self._store.values()
                if record["status"] == "running")
            return {
                "queue_depth": len(self._queue),
                "running": running,
                "service": dict(self.stats),
                "workers": workers,
                "telemetry": self._job_telemetry_locked(),
            }

    def _job_telemetry_locked(self) -> Dict[str, Any]:
        """Merge the telemetry every completed job reported (caller
        holds the lock): latency histograms bucket-merge across jobs,
        sync and provenance totals sum — the same semantics
        :func:`repro.obs.merge.merge_telemetry` applies to shard
        payloads."""
        latencies: List[Dict[str, Any]] = []
        sync_totals: Dict[str, int] = {}
        provenance: Dict[str, int] = {}
        trace_records = 0
        jobs = 0
        for record in self._store.values():
            result = record.get("result")
            if record["status"] != "done" \
                    or not isinstance(result, dict):
                continue
            jobs += 1
            if result.get("latency"):
                latencies.append(result["latency"])
            for key, value in (result.get("sync") or {}).items():
                sync_totals[key] = sync_totals.get(key, 0) \
                    + int(value)
            for key, value in (result.get("provenance")
                               or {}).items():
                if key == "sample":
                    provenance[key] = max(provenance.get(key, 1),
                                          int(value))
                else:
                    provenance[key] = provenance.get(key, 0) \
                        + int(value)
            trace_records += int(result.get("trace_records", 0))
        return {
            "jobs": jobs,
            "latency": (merge_histograms(latencies)
                        if latencies else None),
            "sync": sync_totals,
            "provenance": provenance or None,
            "trace_records": trace_records,
        }

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._assign()
            busy = [w for w in self._workers if w.busy]
            if busy:
                _conn_wait([w.conn for w in busy], timeout=0.1)
                for worker in busy:
                    self._collect(worker)
            else:
                time.sleep(0.02)

    def _assign(self) -> None:
        with self._lock:
            for worker in self._workers:
                if not self._queue:
                    return
                if worker.busy:
                    continue
                job_id, attempt = self._queue.pop(0)
                record = self._store[job_id]
                record["status"] = "running"
                record["attempts"] = attempt
                try:
                    worker.conn.send(("job", job_id, record["run"],
                                      attempt))
                except (BrokenPipeError, OSError):
                    # Dead pipe — treat like a crash before work began.
                    self._queue.insert(0, (job_id, attempt))
                    record["status"] = "queued"
                    self._replace(worker)
                    continue
                worker.job_id = job_id
                worker.attempt = attempt
                worker.deadline = time.monotonic() + self.timeout_s

    def _collect(self, worker: _Worker) -> None:
        if not worker.busy:
            return
        if worker.conn.poll():
            try:
                kind, job_id, payload = worker.conn.recv()
            except (EOFError, OSError):
                # The EOF can outrun process reaping — join briefly so
                # the crash detail reports the real exit code.
                worker.process.join(timeout=2.0)
                self._on_crash(worker,
                               {"exitcode": worker.process.exitcode})
                return
            self._settle(worker, kind, job_id, payload)
            return
        if worker.process.exitcode is not None:
            self._on_crash(worker,
                           {"exitcode": worker.process.exitcode})
            return
        if time.monotonic() >= worker.deadline:
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join()
            self._on_failure(worker, "timeout",
                             {"timeout_s": self.timeout_s})

    def _settle(self, worker: _Worker, kind: str, job_id: str,
                payload: Dict[str, Any]) -> None:
        with self._lock:
            record = self._store[job_id]
            worker.counters["jobs"] += 1
            if kind == "ok":
                record["status"] = "done"
                record["result"] = payload
                self.stats["completed"] += 1
                worker.counters["ok"] += 1
            else:
                # Deterministic scenario error: full traceback, no
                # retry (the PR 7 sweep policy).
                record["status"] = "error"
                record["result"] = {"detail": payload}
                self.stats["errors"] += 1
                worker.counters["errors"] += 1
            worker.job_id = None
            self._done.notify_all()

    def _on_crash(self, worker: _Worker,
                  detail: Dict[str, Any]) -> None:
        self.stats["crashes"] += 1
        worker.counters["crashes"] += 1
        self._on_failure(worker, "crash", detail)

    def _on_failure(self, worker: _Worker, kind: str,
                    detail: Dict[str, Any]) -> None:
        """Crash/timeout: respawn the worker, retry the job once."""
        if kind == "timeout":
            self.stats["timeouts"] += 1
            worker.counters["timeouts"] += 1
        job_id, attempt = worker.job_id, worker.attempt
        self._replace(worker)
        with self._lock:
            record = self._store[job_id]
            if attempt < MAX_ATTEMPTS:
                self.stats["retries"] += 1
                worker.counters["retries"] += 1
                record["status"] = "queued"
                self._queue.insert(0, (job_id, attempt + 1))
            else:
                record["status"] = kind
                record["result"] = {"detail": detail}
                worker.counters["jobs"] += 1
                self._done.notify_all()

    def _replace(self, worker: _Worker) -> None:
        worker.conn.close()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
        replacement = self._spawn(worker.name)
        worker.process = replacement.process
        worker.conn = replacement.conn
        worker.job_id = None

    # ------------------------------------------------------------------
    # Socket front door
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept clients until a ``shutdown`` request (or
        :meth:`shutdown` from another thread); each client connection
        is served by its own thread, one JSON object per line."""
        self.start()
        assert self._listener is not None
        try:
            while not self._stop.is_set():
                try:
                    sock, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_client, args=(sock,),
                    daemon=True)
                thread.start()
        finally:
            self.shutdown()

    def _serve_client(self, sock: socket.socket) -> None:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        try:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    reply = self._handle(json.loads(line))
                except (json.JSONDecodeError, SweepSpecError,
                        KeyError, RuntimeError, TypeError) as exc:
                    reply = {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                stream.write(json.dumps(reply) + "\n")
                stream.flush()
                if reply.get("bye"):
                    break
        except (BrokenPipeError, ConnectionError, OSError):
            pass
        finally:
            try:
                stream.close()
                sock.close()
            except OSError:
                pass

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "submit":
            job_id = self.submit(request["run"])
            return {"ok": True, "job_id": job_id}
        if op == "result":
            record = self.result(request["job_id"],
                                 wait=bool(request.get("wait", True)),
                                 timeout=request.get("timeout"))
            return {"ok": True, "job": record}
        if op == "status":
            return {"ok": True, "status": self.status()}
        if op == "stats":
            return {"ok": True, "stats": self.stats_snapshot()}
        if op == "shutdown":
            # Reply first, then trip the stop flag: serve_forever's
            # finally block performs the actual teardown.
            self._stop.set()
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


class ServeClient:
    """Python-side client of the serve wire protocol.

    Example::

        with ServeClient(("127.0.0.1", 7453)) as client:
            job_id = client.submit(run_payload)
            record = client.result(job_id, wait=True)
    """

    def __init__(self, address: Tuple[str, int],
                 timeout: Optional[float] = 60.0) -> None:
        self.address = tuple(address)
        self._sock = socket.create_connection(self.address,
                                              timeout=timeout)
        self._stream = self._sock.makefile("rw", encoding="utf-8",
                                           newline="\n")

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._stream.write(json.dumps(request) + "\n")
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ConnectionError(
                f"serve endpoint {self.address} closed the connection")
        reply = json.loads(line)
        if not reply.get("ok"):
            raise RuntimeError(
                f"serve request failed: {reply.get('error')}")
        return reply

    def submit(self, run: Dict[str, Any]) -> str:
        """Submit one run payload; returns the job id."""
        return self._call({"op": "submit", "run": run})["job_id"]

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Fetch (optionally await) one job record."""
        request: Dict[str, Any] = {"op": "result", "job_id": job_id,
                                   "wait": wait}
        if timeout is not None:
            request["timeout"] = timeout
        return self._call(request)["job"]

    def status(self) -> Dict[str, Any]:
        """The service's status snapshot."""
        return self._call({"op": "status"})["status"]

    def stats(self) -> Dict[str, Any]:
        """The live STATS introspection payload (queue depth,
        per-worker counters, merged completed-job telemetry)."""
        return self._call({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the service to shut down."""
        self._call({"op": "shutdown"})

    def close(self) -> None:
        """Close the client connection (idempotent)."""
        try:
            self._stream.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        """Enter ``with ServeClient(...) as client`` — returns self."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on scope exit."""
        self.close()
