"""IEEE 1164 nine-value logic.

The VHDL simulator substrate models signals with the full
``std_logic`` value set so that the hardware-test-board model can
represent tristate byte lanes ('Z'), bus contention ('X') and
uninitialised state ('U') faithfully:

====== =============================
value  meaning
====== =============================
'U'    uninitialised
'X'    forcing unknown
'0'    forcing 0
'1'    forcing 1
'Z'    high impedance
'W'    weak unknown
'L'    weak 0
'H'    weak 1
'-'    don't care
====== =============================

Vectors are plain tuples of these characters, MSB first (index 0 is
the leftmost/most-significant bit, matching ``STD_LOGIC_VECTOR(7
DOWNTO 0)`` written left to right).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

__all__ = ["STD_LOGIC_VALUES", "resolve", "resolve_many", "to_vector",
           "vector_to_int", "is_defined", "bits", "LogicError",
           "U", "X", "ZERO", "ONE", "Z"]

STD_LOGIC_VALUES = "UX01ZWLH-"

U, X, ZERO, ONE, Z = "U", "X", "0", "1", "Z"


class LogicError(ValueError):
    """Raised for values outside the nine-value alphabet or malformed
    vectors."""


# IEEE 1164 resolution table: _RESOLUTION[a][b].
_ORDER = {v: i for i, v in enumerate(STD_LOGIC_VALUES)}
_RESOLUTION_ROWS = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "U", "U", "U", "U", "U", "U"],  # U
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # X
    ["U", "X", "0", "X", "0", "0", "0", "0", "X"],  # 0
    ["U", "X", "X", "1", "1", "1", "1", "1", "X"],  # 1
    ["U", "X", "0", "1", "Z", "W", "L", "H", "X"],  # Z
    ["U", "X", "0", "1", "W", "W", "W", "W", "X"],  # W
    ["U", "X", "0", "1", "L", "W", "L", "W", "X"],  # L
    ["U", "X", "0", "1", "H", "W", "W", "H", "X"],  # H
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # -
]


def _check(value: str) -> str:
    if value not in _ORDER:
        raise LogicError(f"{value!r} is not a std_logic value")
    return value


def resolve(a: str, b: str) -> str:
    """Resolve two competing scalar drivers (IEEE 1164 table)."""
    return _RESOLUTION_ROWS[_ORDER[_check(a)]][_ORDER[_check(b)]]


def resolve_many(values: Iterable[str]) -> str:
    """Resolve any number of drivers; no drivers resolves to 'Z'."""
    result = "Z"
    first = True
    for value in values:
        if first:
            result = _check(value)
            first = False
        else:
            result = resolve(result, value)
    return result


# Conversion caches.  Vector signals are driven with the same small
# set of integers over and over (octets on a cell stream, opcodes on a
# bus), and converted back just as repetitively; memoising the
# conversions takes them off the kernel's hot path.  Both caches are
# capped so a pathological workload degrades to the uncached cost
# instead of growing without bound.
_INT_VECTOR_CACHE: dict = {}
_VECTOR_INT_CACHE: dict = {}
_CACHE_LIMIT = 65536


def to_vector(value: Union[int, str, Sequence[str]],
              width: int) -> Tuple[str, ...]:
    """Build an MSB-first *width*-bit vector from an int, a literal
    string like ``"01ZX"``, or an existing bit sequence.

    Integers must be non-negative and fit in *width* bits.
    """
    if width <= 0:
        raise LogicError(f"non-positive vector width {width}")
    if isinstance(value, int):
        cached = _INT_VECTOR_CACHE.get((width, value))
        if cached is not None:
            return cached
        if value < 0:
            raise LogicError(f"negative value {value} for a vector")
        if value >= (1 << width):
            raise LogicError(f"value {value} does not fit in {width} bits")
        vector = tuple("1" if (value >> (width - 1 - i)) & 1 else "0"
                       for i in range(width))
        if len(_INT_VECTOR_CACHE) < _CACHE_LIMIT:
            _INT_VECTOR_CACHE[(width, value)] = vector
        return vector
    vector = tuple(value)
    if len(vector) != width:
        raise LogicError(
            f"vector literal of width {len(vector)} != {width}")
    for bit in vector:
        _check(bit)
    return vector


def vector_to_int(vector: Sequence[str]) -> int:
    """Interpret an MSB-first vector of '0'/'1' as an unsigned int.

    Raises:
        LogicError: any bit is not a strong 0/1 (metavalues do not
            convert; this is how X-propagation bugs surface in tests).
    """
    if type(vector) is tuple:
        cached = _VECTOR_INT_CACHE.get(vector)
        if cached is not None:
            return cached
    result = 0
    for bit in vector:
        if bit == "1":
            result = (result << 1) | 1
        elif bit == "0":
            result <<= 1
        else:
            raise LogicError(
                f"vector {''.join(vector)!r} contains metavalue {bit!r}")
    if type(vector) is tuple and len(_VECTOR_INT_CACHE) < _CACHE_LIMIT:
        _VECTOR_INT_CACHE[vector] = result
    return result


def is_defined(value: Union[str, Sequence[str]]) -> bool:
    """True when every bit is a strong '0' or '1'."""
    if isinstance(value, str) and len(value) == 1:
        return value in "01"
    return all(bit in "01" for bit in value)


def bits(text: str) -> Tuple[str, ...]:
    """Shorthand: ``bits("1010")`` -> ``('1','0','1','0')``."""
    return to_vector(text, len(text))
