"""Tests for self-similar (Pareto on-off) traffic."""


import pytest

from repro.traffic import (ParetoOnOffSource, PoissonArrivals,
                           SelfSimilarAggregate, hurst_from_shape,
                           sample_arrivals, variance_time_slopes)


class TestHurst:
    def test_formula(self):
        assert hurst_from_shape(1.5) == pytest.approx(0.75)
        assert hurst_from_shape(1.2) == pytest.approx(0.9)

    def test_shape_bounds(self):
        with pytest.raises(ValueError):
            hurst_from_shape(1.0)
        with pytest.raises(ValueError):
            hurst_from_shape(2.0)


class TestParetoOnOff:
    def test_gaps_at_least_peak_period(self):
        src = ParetoOnOffSource(peak_period=1.0, mean_on=10.0,
                                mean_off=5.0, seed=3)
        gaps = [src.next_interarrival() for _ in range(400)]
        assert all(g >= 1.0 - 1e-12 for g in gaps)

    def test_reset_reproduces(self):
        src = ParetoOnOffSource(peak_period=0.1, mean_on=1.0,
                                mean_off=1.0, seed=5)
        first = [src.next_interarrival() for _ in range(50)]
        src.reset()
        assert [src.next_interarrival() for _ in range(50)] == first

    def test_long_run_rate_near_formula(self):
        src = ParetoOnOffSource(peak_period=0.01, mean_on=1.0,
                                mean_off=1.0, alpha=1.8, seed=7)
        times = sample_arrivals(src, 30000)
        measured = len(times) / times[-1]
        # heavy tails converge slowly: generous tolerance
        assert measured == pytest.approx(src.mean_rate(), rel=0.35)

    def test_heavier_tail_means_longer_extreme_bursts(self):
        """Smaller alpha -> heavier tails -> larger extreme OFF gaps."""
        def extreme_gap(alpha):
            src = ParetoOnOffSource(peak_period=0.01, mean_on=0.5,
                                    mean_off=0.5, alpha=alpha, seed=11)
            return max(src.next_interarrival() for _ in range(20000))
        assert extreme_gap(1.2) > extreme_gap(1.9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ParetoOnOffSource(0, 1, 1)
        with pytest.raises(ValueError):
            ParetoOnOffSource(1, 1, 1, alpha=2.5)


class TestAggregate:
    def test_rate_is_sum_of_sources(self):
        agg = SelfSimilarAggregate(sources=4, peak_period=0.01,
                                   mean_on=1.0, mean_off=1.0)
        single = ParetoOnOffSource(peak_period=0.01, mean_on=1.0,
                                   mean_off=1.0)
        assert agg.mean_rate() == pytest.approx(4 * single.mean_rate())
        assert agg.source_count == 4

    def test_merged_stream_is_time_ordered(self):
        agg = SelfSimilarAggregate(sources=5, peak_period=0.02,
                                   mean_on=0.5, mean_off=0.5, seed=2)
        gaps = [agg.next_interarrival() for _ in range(2000)]
        assert all(g >= 0.0 for g in gaps)

    def test_reset_reproduces(self):
        agg = SelfSimilarAggregate(sources=3, peak_period=0.05,
                                   mean_on=0.5, mean_off=0.5, seed=9)
        first = [agg.next_interarrival() for _ in range(100)]
        agg.reset()
        assert [agg.next_interarrival() for _ in range(100)] == first

    def test_needs_a_source(self):
        with pytest.raises(ValueError):
            SelfSimilarAggregate(sources=0, peak_period=1, mean_on=1,
                                 mean_off=1)

    def test_variance_decays_slower_than_poisson(self):
        """The self-similarity signature: across doubling aggregation
        levels, the aggregate's rate variance decays more slowly than
        a Poisson stream of the same rate."""
        agg = SelfSimilarAggregate(sources=8, peak_period=0.01,
                                   mean_on=0.4, mean_off=0.6,
                                   alpha=1.3, seed=4)
        agg_times = sample_arrivals(agg, 40000)
        rate = len(agg_times) / agg_times[-1]
        poisson = PoissonArrivals(rate=rate, seed=4)
        poi_times = sample_arrivals(poisson, 40000)

        base = 50 * 0.01
        agg_var = variance_time_slopes(agg_times, base_bin=base,
                                       levels=5)
        poi_var = variance_time_slopes(poi_times, base_bin=base,
                                       levels=5)
        # total decay across 4 doublings: self-similar decays less
        agg_decay = agg_var[0] / agg_var[-1]
        poi_decay = poi_var[0] / poi_var[-1]
        assert agg_decay < poi_decay


class TestVarianceTime:
    def test_validation(self):
        with pytest.raises(ValueError):
            variance_time_slopes([], 1.0)
        with pytest.raises(ValueError):
            variance_time_slopes([1.0], 0.0)

    def test_levels_count(self):
        times = [i * 0.1 for i in range(100)]
        assert len(variance_time_slopes(times, 0.5, levels=4)) == 4
