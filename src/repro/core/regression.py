"""Regression test-bench management.

The paper's opening problem statement: "common approaches ... are
based on the creation of regression test benches to perform simulative
validation of functionality", and CASTANET's file workflow lets one
"re-run previously generated test vectors".  This module provides the
bookkeeping around that: a named suite of benches whose results are
recorded once as *golden* and compared on every re-run, with
field-level diffs on regressions.

Results must be JSON-serialisable (dicts/lists/numbers/strings) so the
golden store is a reviewable text file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = ["RegressionSuite", "CaseResult", "RegressionReport",
           "RegressionError"]


class RegressionError(Exception):
    """Raised on suite misuse (duplicate names, missing golden run)."""


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one case in one run."""

    name: str
    status: str                     # "pass" | "fail" | "new" | "error"
    diffs: Tuple[str, ...] = ()
    error: Optional[str] = None


@dataclass
class RegressionReport:
    """Outcome of a whole suite run."""

    results: List[CaseResult]

    @property
    def passed(self) -> bool:
        """True when no case failed or errored (new cases are OK)."""
        return all(r.status in ("pass", "new") for r in self.results)

    def counts(self) -> Dict[str, int]:
        """status -> number of cases."""
        summary: Dict[str, int] = {}
        for result in self.results:
            summary[result.status] = summary.get(result.status, 0) + 1
        return summary

    def summary(self) -> str:
        """One line: '3 pass, 1 fail, 1 new'."""
        counts = self.counts()
        return ", ".join(f"{counts[k]} {k}" for k in sorted(counts))


class RegressionSuite:
    """A named set of regression benches with a golden-result store.

    Example::

        suite = RegressionSuite("switch", golden_path="golden.json")
        suite.add_case("translate", run_translation_bench)
        suite.record_golden()     # once, on the blessed build
        report = suite.run()      # every build thereafter
        assert report.passed, report.summary()
    """

    def __init__(self, name: str,
                 golden_path: Union[str, Path]) -> None:
        self.name = name
        self.golden_path = Path(golden_path)
        self._cases: Dict[str, Callable[[], Any]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_case(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a bench: *fn* returns a JSON-serialisable result."""
        if name in self._cases:
            raise RegressionError(f"duplicate case {name!r}")
        self._cases[name] = fn

    @property
    def case_names(self) -> List[str]:
        """Registered case names, in insertion order."""
        return list(self._cases)

    # ------------------------------------------------------------------
    # Golden store
    # ------------------------------------------------------------------
    def record_golden(self) -> Dict[str, Any]:
        """Execute every case and bless the results as golden."""
        results = {name: self._normalise(fn())
                   for name, fn in self._cases.items()}
        payload = {"suite": self.name, "results": results}
        self.golden_path.write_text(json.dumps(payload, indent=2,
                                               sort_keys=True) + "\n")
        return results

    def load_golden(self) -> Dict[str, Any]:
        """The blessed results (raises without a golden run)."""
        if not self.golden_path.exists():
            raise RegressionError(
                f"no golden results at {self.golden_path}; run "
                "record_golden() on a blessed build first")
        payload = json.loads(self.golden_path.read_text())
        if payload.get("suite") != self.name:
            raise RegressionError(
                "golden file belongs to suite "
                f"{payload.get('suite')!r}, not {self.name!r}")
        return payload["results"]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RegressionReport:
        """Execute every case and compare against the golden store."""
        golden = self.load_golden()
        results: List[CaseResult] = []
        for name, fn in self._cases.items():
            try:
                actual = self._normalise(fn())
            except Exception as exc:  # a crashed bench is a regression
                results.append(CaseResult(name=name, status="error",
                                          error=f"{type(exc).__name__}: "
                                                f"{exc}"))
                continue
            if name not in golden:
                results.append(CaseResult(name=name, status="new"))
                continue
            diffs = tuple(self._diff("", golden[name], actual))
            results.append(CaseResult(
                name=name, status="pass" if not diffs else "fail",
                diffs=diffs))
        return RegressionReport(results=results)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise(value: Any) -> Any:
        """Round-trip through JSON so stored and fresh results compare
        on equal footing (tuples become lists etc.)."""
        return json.loads(json.dumps(value))

    @classmethod
    def _diff(cls, path: str, golden: Any, actual: Any):
        """Yield human-readable field-level differences."""
        if type(golden) is not type(actual):
            yield (f"{path or '<root>'}: type changed "
                   f"{type(golden).__name__} -> {type(actual).__name__}")
            return
        if isinstance(golden, dict):
            for key in sorted(set(golden) | set(actual)):
                sub = f"{path}.{key}" if path else str(key)
                if key not in golden:
                    yield f"{sub}: unexpected new field"
                elif key not in actual:
                    yield f"{sub}: field disappeared"
                else:
                    yield from cls._diff(sub, golden[key], actual[key])
        elif isinstance(golden, list):
            if len(golden) != len(actual):
                yield (f"{path or '<root>'}: length {len(golden)} -> "
                       f"{len(actual)}")
                return
            for index, (g, a) in enumerate(zip(golden, actual)):
                yield from cls._diff(f"{path}[{index}]", g, a)
        elif golden != actual:
            yield f"{path or '<root>'}: {golden!r} -> {actual!r}"
