"""Synchronous show-ahead FIFO.

The cell buffer used by the RTL port module and accounting unit.
Show-ahead (first-word-fall-through) semantics: when not empty,
``rd_data`` already shows the head entry; asserting ``rd_en`` for one
clock pops it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from typing import Optional

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .component import Component

__all__ = ["SyncFifo"]


class SyncFifo(Component):
    """A clocked FIFO of ``depth`` words of ``width`` bits.

    Ports (all created by the component):
        wr_en, wr_data — write side, sampled on the rising clock edge.
        rd_en, rd_data — read side (show-ahead).
        empty, full    — status flags.

    A write to a full FIFO is dropped and counted in
    :attr:`overflow_drops` (the loss behaviour of an ATM buffer); a
    read from an empty FIFO is ignored.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 width: int, depth: int,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        if depth < 1:
            raise ValueError(f"FIFO depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.wr_en = self.signal("wr_en", init="0")
        self.wr_data = self.signal("wr_data", width=width, init=0)
        self.rd_en = self.signal("rd_en", init="0")
        self.rd_data = self.signal("rd_data", width=width, init=0)
        self.empty = self.signal("empty", init="1")
        self.full = self.signal("full", init="0")
        self._store: Deque[int] = deque()
        self.overflow_drops = 0
        self.max_level = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    def __len__(self) -> int:
        return len(self._store)

    def _tick(self) -> None:
        popped = False
        if self.rd_en.value == "1" and self._store:
            self._store.popleft()
            popped = True
        if self.wr_en.value == "1":
            if len(self._store) >= self.depth:
                self.overflow_drops += 1
            else:
                self._store.append(vector_to_int(self.wr_data.value))
                self.max_level = max(self.max_level, len(self._store))
        if popped or self.wr_en.value == "1":
            self._update_outputs()

    def _update_outputs(self) -> None:
        if self._store:
            self.rd_data.drive(self._store[0])
            self.empty.drive("0")
        else:
            self.empty.drive("1")
        self.full.drive("1" if len(self._store) >= self.depth else "0")

    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick` over raw slot values."""
        wr_en = ctx.read(self.wr_en)
        wr_data = ctx.read(self.wr_data)
        rd_en = ctx.read(self.rd_en)
        w_rd_data = ctx.write(self.rd_data)
        w_empty = ctx.write(self.empty)
        w_full = ctx.write(self.full)
        store = self._store
        depth = self.depth

        def evaluate():
            popped = False
            if rd_en.value == "1" and store:
                store.popleft()
                popped = True
            writing = wr_en.value == "1"
            if writing:
                if len(store) >= depth:
                    self.overflow_drops += 1
                else:
                    store.append(slot_int(wr_data.value))
                    self.max_level = max(self.max_level, len(store))
            if popped or writing:
                if store:
                    w_rd_data(store[0])
                    w_empty("0")
                else:
                    w_empty("1")
                w_full("1" if len(store) >= depth else "0")

        return evaluate
