"""Tests for the RTL port module (HEC check + VPI/VCI translation)."""


from repro.atm import AtmCell
from repro.hdl import Simulator
from repro.rtl import AtmPortModuleRtl, CellReceiver, CellSender


def make_port_bench():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    port = AtmPortModuleRtl(sim, "pm", clk)
    sender = CellSender(sim, "tx", clk, port=port.rx)
    receiver = CellReceiver(sim, "mon", clk, port.tx)
    return sim, port, sender, receiver


def test_translated_cell_comes_out():
    sim, port, sender, receiver = make_port_bench()
    port.install(1, 100, 2, 200)
    cell = AtmCell.with_payload(1, 100, list(range(48)), clp=1, pt=3)
    sender.send(cell.to_octets())
    sim.run(until=10 * 150)
    assert port.cells_translated == 1
    assert len(receiver.cells) == 1
    out = AtmCell.from_octets(receiver.cells[0])  # HEC verified here
    assert (out.vpi, out.vci) == (2, 200)
    assert out.payload == cell.payload
    assert out.pt == 3 and out.clp == 1  # PT/CLP preserved


def test_output_hec_is_regenerated():
    sim, port, sender, receiver = make_port_bench()
    port.install(1, 100, 9, 900)
    sender.send(AtmCell.with_payload(1, 100, [1]).to_octets())
    sim.run(until=10 * 150)
    octets = receiver.cells[0]
    # from_octets with verify_hec=True raises on a stale HEC
    assert AtmCell.from_octets(octets, verify_hec=True).vpi == 9


def test_unknown_connection_dropped():
    sim, port, sender, receiver = make_port_bench()
    sender.send(AtmCell.with_payload(3, 33, []).to_octets())
    sim.run(until=10 * 150)
    assert port.unknown_connections == 1
    assert receiver.cells == []


def test_hec_error_dropped():
    sim, port, sender, receiver = make_port_bench()
    port.install(1, 100, 2, 200)
    octets = AtmCell.with_payload(1, 100, []).to_octets()
    octets[4] ^= 0xFF  # corrupt the HEC
    sender.send(octets)
    sim.run(until=10 * 150)
    assert port.hec_errors == 1
    assert receiver.cells == []


def test_idle_cells_stripped():
    sim, port, sender, receiver = make_port_bench()
    sender.send(AtmCell.idle().to_octets())
    sim.run(until=10 * 150)
    assert port.idle_cells == 1
    assert receiver.cells == []


def test_remove_connection():
    sim, port, sender, receiver = make_port_bench()
    port.install(1, 100, 2, 200)
    port.remove(1, 100)
    sender.send(AtmCell.with_payload(1, 100, []).to_octets())
    sim.run(until=10 * 150)
    assert port.unknown_connections == 1


def test_stream_of_cells_all_translated():
    sim, port, sender, receiver = make_port_bench()
    for vci in range(1, 6):
        port.install(1, vci, 2, vci + 1000)
    for vci in range(1, 6):
        sender.send(AtmCell.with_payload(1, vci, [vci]).to_octets())
    sim.run(until=10 * 600)
    assert port.cells_translated == 5
    vcis = [AtmCell.from_octets(c).vci for c in receiver.cells]
    assert vcis == [1001, 1002, 1003, 1004, 1005]


def test_pipeline_latency_roughly_one_cell():
    """First output octet appears shortly after the last input octet."""
    sim, port, sender, receiver = make_port_bench()
    port.install(1, 100, 2, 200)
    sender.send(AtmCell.with_payload(1, 100, []).to_octets())
    sim.run(until=10 * 300)
    assert len(receiver.cells) == 1
    # 53 octets in (530 ticks) + ~2 clock pipeline + 53 octets out
    assert 10 * 100 <= sim.now
