"""Hardware test board model (the RAVEN substitute).

128-pin / 16-byte-lane bit-stream interface, Figure-5 pin-mapping
configuration data sets, stimulus/response memories, SW/HW activity
test cycles and a SCSI transport model, plus pin-level DUT adapters
that mount RTL designs behind the board's pins.
"""

from .board import (BoardError, HardwareTestBoard, MAX_BOARD_CLOCK_HZ,
                    MAX_CYCLE_CLOCKS, MIN_CYCLE_CLOCKS, TestCycleResult,
                    TestCycleStats)
from .device import LoopbackDevice, PinLevelDevice, RtlPinDevice
from .pinmap import (ConfigurationDataSet, CtrlPortMapping, IoPortMapping,
                     LANE_WIDTH, NUM_BYTE_LANES, NUM_PINS, PinMapError,
                     PinSegment, PortMapping)
from .scsi import ScsiBus, ScsiTransfer
from .selftest import (BoardSelfTest, SelfTestResult,
                       loopback_all_lanes_config)

__all__ = [
    "BoardError", "HardwareTestBoard", "MAX_BOARD_CLOCK_HZ",
    "MAX_CYCLE_CLOCKS", "MIN_CYCLE_CLOCKS", "TestCycleResult",
    "TestCycleStats",
    "LoopbackDevice", "PinLevelDevice", "RtlPinDevice",
    "ConfigurationDataSet", "CtrlPortMapping", "IoPortMapping",
    "LANE_WIDTH", "NUM_BYTE_LANES", "NUM_PINS", "PinMapError",
    "PinSegment", "PortMapping",
    "ScsiBus", "ScsiTransfer",
    "BoardSelfTest", "SelfTestResult", "loopback_all_lanes_config",
]
