"""Tests for the RTL UPC policer, co-verified against the GCRA
reference model."""

import pytest

from repro.atm import AtmCell, VirtualScheduling
from repro.hdl import Simulator
from repro.rtl import CellReceiver, CellSender, UpcPolicerRtl


def make_bench(action="drop", bug=None, gap_octets=0):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    dut = UpcPolicerRtl(sim, "upc", clk, action=action, bug=bug)
    sender = CellSender(sim, "gen", clk, port=dut.rx,
                        gap_octets=gap_octets)
    receiver = CellReceiver(sim, "mon", clk, dut.tx)
    return sim, dut, sender, receiver


def run_cells(sim, sender, cells, extra_clocks=200):
    for cell in cells:
        sender.send(cell.to_octets())
    sim.run(until=10 * (53 * (len(cells) + 2)
                        + sender.gap_octets * len(cells) + extra_clocks))


def test_nominal_rate_all_conforming():
    """Cells spaced exactly at the contract rate all conform."""
    sim, dut, sender, receiver = make_bench(gap_octets=53)
    # one cell every 106 clocks; contract: increment 100, tau 10
    dut.install_contract(1, 100, increment_clocks=100, limit_clocks=10)
    run_cells(sim, sender, [AtmCell.with_payload(1, 100, [i])
                            for i in range(5)])
    assert dut.cells_conforming == 5
    assert dut.cells_non_conforming == 0
    assert len(receiver.cells) == 5


def test_back_to_back_burst_partially_rejected():
    """A burst above the contract rate loses cells at the UPC point."""
    sim, dut, sender, receiver = make_bench()
    # back-to-back cells = 53 clocks apart; contract wants 200 apart
    dut.install_contract(1, 100, increment_clocks=200, limit_clocks=0)
    run_cells(sim, sender, [AtmCell.with_payload(1, 100, [i])
                            for i in range(6)])
    assert dut.cells_non_conforming > 0
    assert (dut.cells_conforming + dut.cells_non_conforming) == 6
    assert len(receiver.cells) == dut.cells_conforming


def test_cdv_tolerance_absorbs_jitter():
    sim, dut, sender, receiver = make_bench()
    # back-to-back (53 clocks) with increment 60 but tau 60: the small
    # early arrivals stay inside the tolerance for a while
    dut.install_contract(1, 100, increment_clocks=60, limit_clocks=60)
    run_cells(sim, sender, [AtmCell.with_payload(1, 100, [i])
                            for i in range(4)])
    assert dut.cells_non_conforming == 0


def test_tagging_action_sets_clp_and_fixes_hec():
    sim, dut, sender, receiver = make_bench(action="tag")
    dut.install_contract(1, 100, increment_clocks=500, limit_clocks=0)
    run_cells(sim, sender, [AtmCell.with_payload(1, 100, [i], clp=0)
                            for i in range(3)])
    assert len(receiver.cells) == 3  # tagged, not dropped
    # from_octets verifies the regenerated HEC
    cells = [AtmCell.from_octets(octs) for octs in receiver.cells]
    assert cells[0].clp == 0             # first cell conforms
    assert all(c.clp == 1 for c in cells[1:])  # the rest are tagged


def test_unregistered_connection_passes_unpoliced():
    sim, dut, sender, receiver = make_bench()
    run_cells(sim, sender, [AtmCell.with_payload(9, 9, [1])])
    assert dut.unpoliced_cells == 1
    assert len(receiver.cells) == 1


def test_idle_cells_not_policed():
    sim, dut, sender, receiver = make_bench()
    run_cells(sim, sender, [AtmCell.idle()])
    assert dut.idle_cells == 1
    assert receiver.cells == []


def test_per_connection_isolation():
    """A greedy connection must not steal another's contract."""
    sim, dut, sender, receiver = make_bench()
    dut.install_contract(1, 100, increment_clocks=300, limit_clocks=0)
    dut.install_contract(1, 200, increment_clocks=60, limit_clocks=10)
    cells = []
    for i in range(4):
        cells.append(AtmCell.with_payload(1, 100, [i]))
        cells.append(AtmCell.with_payload(1, 200, [i]))
    run_cells(sim, sender, cells)
    verdicts_200 = [d.conforming for d in dut.decisions if d.vci == 200]
    assert all(verdicts_200)  # 106-clock spacing meets its 60/10 contract
    verdicts_100 = [d.conforming for d in dut.decisions if d.vci == 100]
    assert not all(verdicts_100)  # 106 < 300: bursty vs its contract


def test_rtl_matches_reference_gcra():
    """Co-verification: replay the logged arrival clocks through the
    algorithmic GCRA; verdicts must be identical."""
    sim, dut, sender, receiver = make_bench(gap_octets=11)
    dut.install_contract(1, 100, increment_clocks=90, limit_clocks=30)
    run_cells(sim, sender, [AtmCell.with_payload(1, 100, [i])
                            for i in range(12)])
    reference = VirtualScheduling(increment=90.0, limit=30.0)
    for decision in dut.decisions:
        assert reference.arrival(float(decision.clock)) \
            == decision.conforming, decision


@pytest.mark.parametrize("bug", ["ignore_cdv", "stale_tat"])
def test_injected_bugs_diverge_from_reference(bug):
    sim, dut, sender, receiver = make_bench(bug=bug)
    dut.install_contract(1, 100, increment_clocks=60, limit_clocks=40)
    run_cells(sim, sender, [AtmCell.with_payload(1, 100, [i])
                            for i in range(12)])
    reference = VirtualScheduling(increment=60.0, limit=40.0)
    mismatches = sum(
        1 for d in dut.decisions
        if reference.arrival(float(d.clock)) != d.conforming)
    assert mismatches > 0, f"bug {bug} produced no divergence"


def test_invalid_configs():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    with pytest.raises(ValueError):
        UpcPolicerRtl(sim, "u", clk, action="shred")
    with pytest.raises(ValueError):
        UpcPolicerRtl(sim, "u2", clk, bug="gremlin")
    dut = UpcPolicerRtl(sim, "u3", clk)
    with pytest.raises(ValueError):
        dut.install_contract(1, 1, increment_clocks=0)
    with pytest.raises(ValueError):
        dut.install_contract(1, 1, increment_clocks=1, limit_clocks=-1)
